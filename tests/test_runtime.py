"""Unit tests for ``repro.runtime``: deadlines, fault plans, degradation.

The degradation contract under test (docs/ROBUSTNESS.md): any engine
given an expired/expiring deadline still returns a *valid* bipartition —
best-so-far, flagged ``degraded=True`` with a reason — never an
exception, and never an invalid partition.
"""

from __future__ import annotations

import pytest

from repro.baselines import (
    fiduccia_mattheyses,
    kernighan_lin,
    multilevel_bipartition,
    random_cut,
    simulated_annealing,
    spectral_bisection,
)
from repro.core.algorithm1 import algorithm1
from repro.generators import random_hypergraph
from repro.runtime import Deadline, DeadlineExpired, faults


@pytest.fixture(autouse=True)
def _clean_fault_plan():
    yield
    faults.configure(None)


@pytest.fixture(scope="module")
def instance():
    return random_hypergraph(60, 100, seed=3, connect=True)


def assert_valid_bipartition(h, bp):
    left, right = set(bp.left), set(bp.right)
    assert left and right
    assert not (left & right)
    assert left | right == set(h.vertices)


class TestDeadline:
    def test_unlimited_never_expires(self):
        d = Deadline.unlimited()
        assert not d.limited
        assert not d.expired()
        assert d.remaining() == float("inf")
        d.check("anywhere")  # must not raise

    def test_zero_budget_expires_immediately(self):
        d = Deadline.after(0.0)
        assert d.limited
        assert d.expired()
        assert d.remaining() == 0.0

    def test_check_raises_with_site(self):
        d = Deadline.after(0.0)
        with pytest.raises(DeadlineExpired) as exc_info:
            d.check("algorithm1.start")
        assert exc_info.value.site == "algorithm1.start"

    def test_negative_seconds_rejected(self):
        with pytest.raises(ValueError):
            Deadline(-1.0)

    def test_coerce(self):
        d = Deadline.after(10.0)
        assert Deadline.coerce(d) is d
        assert Deadline.coerce(None) is None
        coerced = Deadline.coerce(5)
        assert isinstance(coerced, Deadline)
        assert coerced.seconds == 5.0

    def test_future_deadline_not_expired(self):
        d = Deadline.after(60.0)
        assert not d.expired()
        assert 0 < d.remaining() <= 60.0


class TestFaultSpec:
    def test_parse_basic(self):
        plan = faults.parse_spec("parallel.start=crash:0.5", seed=7)
        assert plan.seed == 7
        (rule,) = plan.rules
        assert rule.site == "parallel.start"
        assert rule.mode == "crash"
        assert rule.probability == 0.5

    def test_parse_multiple_rules_with_seconds(self):
        plan = faults.parse_spec("a=hang:1:30, b=slow:0.2:0.01")
        assert len(plan.rules) == 2
        assert plan.rules[0].seconds == 30.0
        assert plan.rules[1].mode == "slow"

    @pytest.mark.parametrize(
        "spec",
        ["nosite", "a=explode", "a=error:2.0", "a=error:x", ""],
    )
    def test_parse_rejects_malformed(self, spec):
        with pytest.raises(faults.FaultSpecError):
            faults.parse_spec(spec)

    def test_glob_site_matching(self):
        rule = faults.FaultRule(site="portfolio.engine.*", mode="error")
        assert rule.matches("portfolio.engine.fm")
        assert not rule.matches("portfolio.other")


class TestFaultInjection:
    def test_no_plan_is_noop(self):
        faults.configure(None)
        faults.inject("anything")  # must not raise

    def test_error_mode_raises(self):
        faults.configure("mysite=error:1")
        with pytest.raises(faults.FaultInjected) as exc_info:
            faults.inject("mysite")
        assert exc_info.value.site == "mysite"

    def test_unmatched_site_is_noop(self):
        faults.configure("mysite=error:1")
        faults.inject("othersite")

    def test_zero_probability_never_fires(self):
        faults.configure("mysite=error:0")
        for _ in range(50):
            faults.inject("mysite")

    def test_suppressed_disarms_injection(self):
        faults.configure("mysite=error:1")
        with faults.suppressed():
            assert not faults.is_active()
            faults.inject("mysite")
        assert faults.is_active()
        with pytest.raises(faults.FaultInjected):
            faults.inject("mysite")

    def test_configure_clears(self):
        faults.configure("mysite=error:1")
        faults.configure(None)
        assert faults.current_plan() is None
        faults.inject("mysite")


class TestAlgorithm1Deadline:
    def test_sequential_deadline_degrades_truthfully(self, instance):
        result = algorithm1(instance, num_starts=50, seed=1, deadline=0.0)
        assert result.degraded
        assert "deadline" in result.degrade_reason
        # At least one start always runs; the counter reports completions.
        assert 1 <= len(result.starts) < 50
        assert result.counters["num_starts"] == len(result.starts)
        assert_valid_bipartition(instance, result.bipartition)

    def test_predrawn_seed_path_also_degrades(self, instance):
        result = algorithm1(instance, num_starts=50, seed=1, parallel=1, deadline=0.0)
        assert result.degraded
        assert len(result.starts) == result.counters["num_starts"] == 1

    def test_unlimited_run_not_degraded(self, instance):
        result = algorithm1(instance, num_starts=4, seed=1)
        assert not result.degraded
        assert result.degrade_reason is None
        assert result.counters["num_starts"] == 4


class TestBaselineDeadlines:
    """Every baseline degrades to best-so-far under an expired budget."""

    def test_fm(self, instance):
        result = fiduccia_mattheyses(instance, seed=0, deadline=0.0)
        assert result.degraded
        assert "deadline" in result.degrade_reason
        assert_valid_bipartition(instance, result.bipartition)

    def test_kl(self, instance):
        result = kernighan_lin(instance, seed=0, deadline=0.0)
        assert result.degraded
        assert_valid_bipartition(instance, result.bipartition)

    def test_sa(self, instance):
        result = simulated_annealing(instance, seed=0, deadline=0.0)
        assert result.degraded
        assert result.iterations == 1  # one temperature step, then stop
        assert_valid_bipartition(instance, result.bipartition)

    def test_random_cut(self, instance):
        result = random_cut(instance, num_starts=100, seed=0, deadline=0.0)
        assert result.degraded
        assert result.iterations == 1
        assert_valid_bipartition(instance, result.bipartition)

    def test_multilevel(self, instance):
        result = multilevel_bipartition(instance, seed=0, deadline=0.0)
        assert result.degraded
        assert_valid_bipartition(instance, result.bipartition)

    def test_spectral_median_split(self, instance):
        result = spectral_bisection(instance, seed=0, deadline=0.0)
        assert result.degraded
        assert "median split" in result.degrade_reason
        assert result.iterations == 0
        assert_valid_bipartition(instance, result.bipartition)

    @pytest.mark.parametrize(
        "engine",
        [
            fiduccia_mattheyses,
            kernighan_lin,
            lambda h, seed, deadline: random_cut(h, num_starts=3, seed=seed, deadline=deadline),
            multilevel_bipartition,
        ],
    )
    def test_unlimited_runs_not_degraded(self, instance, engine):
        result = engine(instance, seed=0, deadline=None)
        assert not result.degraded
        assert result.degrade_reason is None

    def test_deadline_accepts_plain_seconds(self, instance):
        result = fiduccia_mattheyses(instance, seed=0, deadline=60.0)
        assert not result.degraded
