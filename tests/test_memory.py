"""Per-worker memory governance: rlimit, RSS polling, and bench wiring.

The contract under test (ISSUE 5): a worker that exceeds its memory
budget becomes a *typed* failed task — never a dead parent, never a
retry loop (re-running an allocation bomb in-process would OOM the very
process the budget protects).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.runtime import SupervisedPool, memory
from repro.runtime.memory import (
    MemoryBudgetExceeded,
    apply_address_space_limit,
    format_bytes,
    rlimit_supported,
    rss_bytes,
    rss_supported,
)

needs_rlimit = pytest.mark.skipif(
    not rlimit_supported(), reason="RLIMIT_AS unsupported on this platform"
)
needs_proc = pytest.mark.skipif(
    not rss_supported(), reason="/proc not available on this platform"
)


def _vm_size_bytes() -> int:
    with open("/proc/self/status") as fh:
        for line in fh:
            if line.startswith("VmSize:"):
                return int(line.split()[1]) * 1024
    raise RuntimeError("VmSize not found")


# ----------------------------------------------------------------------
# Primitives


class TestPrimitives:
    def test_format_bytes_renders_mib(self):
        assert format_bytes(64 << 20) == "64 MiB"

    def test_budget_exceeded_is_a_memory_error(self):
        exc = MemoryBudgetExceeded("over", limit_bytes=123)
        assert isinstance(exc, MemoryError)
        assert exc.limit_bytes == 123

    @needs_proc
    def test_rss_bytes_reads_own_process(self):
        rss = rss_bytes(os.getpid())
        assert rss is not None and rss > 0

    @needs_proc
    def test_rss_bytes_returns_none_for_dead_pid(self):
        # PID max on Linux is bounded; 2**22+1 exceeds the default limit.
        assert rss_bytes(2**22 + 1) is None


# ----------------------------------------------------------------------
# Child-side rlimit: an allocation bomb dies alone, typed


def _allocate(payload):
    if payload.get("bomb"):
        return len(bytearray(payload["bytes"]))
    time.sleep(payload.get("sleep", 0))
    return 0


@needs_rlimit
class TestAddressSpaceLimit:
    def test_apply_limit_reports_success(self):
        # Applied in a forked child so the test process stays unlimited.
        pid = os.fork()
        if pid == 0:
            os._exit(0 if apply_address_space_limit(_vm_size_bytes() + (64 << 20)) else 1)
        _, status = os.waitpid(pid, 0)
        assert os.waitstatus_to_exitcode(status) == 0

    def test_over_budget_worker_fails_typed_without_retry(self):
        # Budget = current footprint + modest headroom: the forked child
        # survives, but a 512 MiB allocation cannot fit.
        limit = _vm_size_bytes() + (64 << 20)
        tasks = [
            ("bomb", {"bomb": True, "bytes": 512 << 20}),
            ("ok", {"bomb": False}),
        ]
        pool = SupervisedPool(
            _allocate, max_workers=2, max_retries=2, memory_limit_bytes=limit
        )
        results, report = pool.map(tasks)
        by_key = {r.key: r for r in results}
        assert by_key["ok"].ok and by_key["ok"].value == 0
        assert not by_key["bomb"].ok
        assert "memory budget" in by_key["bomb"].error
        assert "MemoryError" in by_key["bomb"].error
        assert report.memory_kills == 1
        assert report.retries == 0  # terminal: never retried
        assert report.sequential_fallbacks == 0  # never rerun in-process
        assert report.degraded


# ----------------------------------------------------------------------
# Parent-side RSS polling: the backstop for memory rlimit cannot see


@needs_proc
class TestRssPolling:
    def test_rss_poller_terminates_over_budget_worker(self, monkeypatch):
        # Make the poller *believe* the sleeping worker is enormous, with
        # an rlimit far too high to fire first — isolates the RSS path.
        from repro.runtime import supervisor as sup_mod

        monkeypatch.setattr(
            sup_mod.memory, "rss_bytes", lambda pid: 10**12, raising=True
        )
        pool = SupervisedPool(
            _allocate, max_workers=1, memory_limit_bytes=10**11
        )
        results, report = pool.map([("sleeper", {"sleep": 30})])
        (task,) = results
        assert not task.ok
        assert "RSS" in task.error and "memory budget" in task.error
        assert report.memory_kills == 1
        assert report.retries == 0

    def test_peak_rss_is_tracked_for_healthy_workers(self):
        pool = SupervisedPool(_allocate, max_workers=1)
        results, report = pool.map([("sleeper", {"sleep": 0.2})])
        assert results[0].ok
        assert report.peak_rss_bytes > 0
        assert report.memory_kills == 0
        assert not report.degraded  # peak RSS alone never degrades a run


# ----------------------------------------------------------------------
# Bench wiring


class TestBenchMemoryLimit:
    def test_memory_limit_requires_parallel(self):
        from repro.bench import BenchError, QUICK_SUITE, run_bench

        with pytest.raises(BenchError, match="require parallel"):
            run_bench("x", cases=QUICK_SUITE[:1], memory_limit_mb=64)

    def test_memory_limit_must_be_positive(self):
        from repro.bench import BenchError, QUICK_SUITE, run_bench

        with pytest.raises(BenchError, match="positive"):
            run_bench("x", cases=QUICK_SUITE[:1], parallel=2, memory_limit_mb=0)

    @needs_rlimit
    def test_over_budget_pair_is_an_explicit_failed_entry(self):
        from repro.bench import QUICK_SUITE, run_bench
        from repro.runtime import faults

        # The injected oom raises MemoryError at the bench.pair site —
        # same handler as a real over-budget allocation, no host impact.
        faults.configure("bench.pair=oom:1", seed=0)
        try:
            payload = run_bench(
                "oom",
                cases=QUICK_SUITE[:1],
                engines=("random",),
                seed=1,
                starts=1,
                repeats=1,
                parallel=2,
                memory_limit_mb=4096,
            )
        finally:
            faults.configure(None)
        (entry,) = payload["results"]
        assert entry["failed"] is True
        assert "memory budget" in entry["error"]
        sup = payload["supervision"]
        assert sup["memory_kills"] == 1
        assert sup["degraded"] is True
        assert "over-memory-budget" in sup["summary"]
