"""Reproducibility of parallel multi-start Algorithm I.

The contract (established when the parallel path landed): child seeds for
all starts are pre-drawn from the master seed, so the result and the full
``StartRecord`` stream are *identical for every worker count* ``k >= 1``.
``parallel=None`` is excluded from the cross-``k`` identity on purpose —
it preserves the historical sequential rng stream (one shared
``random.Random`` threaded through the starts), which draws differently
from the pre-drawn per-start seeds; changing that would silently shift
every seeded result users have recorded.  It must still be deterministic
run to run, which is asserted separately.

Resolution (PR 5, recorded in ROADMAP.md): the two streams are **both
permanent, intended contracts** — they will not be unified.  The
sequential stream is frozen for historical reproducibility; the
pre-drawn per-start stream is frozen because worker-count invariance
and journal checkpoint/resume (``--journal``/``--resume`` skip
completed starts by index) both depend on it.  ``partition --help``
documents the split under ``--parallel``.
"""

from __future__ import annotations

import pytest

from repro.core.algorithm1 import algorithm1
from repro.generators import random_hypergraph

STARTS = 8
SEED = 123


@pytest.fixture(scope="module")
def instance():
    return random_hypergraph(80, 130, seed=9, connect=True)


@pytest.fixture(scope="module")
def per_worker_results(instance):
    return {
        k: algorithm1(instance, num_starts=STARTS, seed=SEED, parallel=k)
        for k in (1, 2, 4)
    }


class TestWorkerCountInvariance:
    def test_bipartitions_identical(self, per_worker_results):
        base = per_worker_results[1]
        for k in (2, 4):
            assert per_worker_results[k].bipartition == base.bipartition, (
                f"parallel={k} returned a different cut than parallel=1"
            )

    def test_cutsizes_identical(self, per_worker_results):
        cuts = {k: r.cutsize for k, r in per_worker_results.items()}
        assert len(set(cuts.values())) == 1, cuts

    def test_start_record_streams_identical(self, per_worker_results):
        base = per_worker_results[1].starts
        assert len(base) == STARTS
        for k in (2, 4):
            assert per_worker_results[k].starts == base, (
                f"parallel={k} produced a different StartRecord stream"
            )

    def test_ignored_edges_identical(self, per_worker_results):
        base = per_worker_results[1]
        for k in (2, 4):
            assert per_worker_results[k].ignored_edges == base.ignored_edges


class TestRunToRunDeterminism:
    def test_sequential_is_deterministic(self, instance):
        a = algorithm1(instance, num_starts=STARTS, seed=SEED)
        b = algorithm1(instance, num_starts=STARTS, seed=SEED)
        assert a.bipartition == b.bipartition
        assert a.starts == b.starts

    def test_parallel_is_deterministic(self, instance):
        a = algorithm1(instance, num_starts=STARTS, seed=SEED, parallel=2)
        b = algorithm1(instance, num_starts=STARTS, seed=SEED, parallel=2)
        assert a.bipartition == b.bipartition
        assert a.starts == b.starts

    def test_different_seeds_differ(self, instance):
        """Determinism must come from the seed, not from ignoring it."""
        streams = {
            seed: algorithm1(instance, num_starts=STARTS, seed=seed, parallel=1).starts
            for seed in (1, 2, 3)
        }
        assert len(set(streams.values())) > 1


# ----------------------------------------------------------------------
# Bench fan-out: worker count must not change a single recorded number


TIMING_FIELDS = ("seconds", "spans", "phases")


def _bench_records(payload):
    """Result records with timing fields stripped, in suite order."""
    return [
        {k: v for k, v in entry.items() if k not in TIMING_FIELDS}
        for entry in payload["results"]
    ]


class TestBenchWorkerCountInvariance:
    @pytest.fixture(scope="class")
    def bench_runs(self):
        from repro.bench import QUICK_SUITE, run_bench

        kwargs = dict(
            cases=QUICK_SUITE,
            engines=("algorithm1", "random", "fm"),
            starts=2,
            repeats=1,
            seed=0,
        )
        sequential = run_bench("seq", **kwargs)
        parallel = {
            workers: run_bench(f"par{workers}", **kwargs, parallel=workers)
            for workers in (1, 2, 4)
        }
        return sequential, parallel

    def test_parallel_matches_sequential_excluding_timing(self, bench_runs):
        sequential, parallel = bench_runs
        expected = _bench_records(sequential)
        for workers, payload in parallel.items():
            assert _bench_records(payload) == expected, f"parallel={workers} diverged"

    def test_no_pair_failed_without_faults(self, bench_runs):
        sequential, parallel = bench_runs
        for payload in [sequential, *parallel.values()]:
            assert not any(e.get("failed") for e in payload["results"])
        for payload in parallel.values():
            assert payload["supervision"]["summary"] == "clean"

    def test_compare_bench_sees_no_regressions_across_paths(self, bench_runs):
        from repro.bench import compare_bench

        sequential, parallel = bench_runs
        for payload in parallel.values():
            # Generous runtime tolerance: this asserts cut/coverage
            # identity, not machine timing.
            assert compare_bench(sequential, payload, runtime_tolerance=100.0) == []
