"""Reproducibility of parallel multi-start Algorithm I.

The contract (established when the parallel path landed): child seeds for
all starts are pre-drawn from the master seed, so the result and the full
``StartRecord`` stream are *identical for every worker count* ``k >= 1``.
``parallel=None`` is excluded from the cross-``k`` identity on purpose —
it preserves the historical sequential rng stream (one shared
``random.Random`` threaded through the starts), which draws differently
from the pre-drawn per-start seeds; changing that would silently shift
every seeded result users have recorded.  It must still be deterministic
run to run, which is asserted separately.
"""

from __future__ import annotations

import pytest

from repro.core.algorithm1 import algorithm1
from repro.generators import random_hypergraph

STARTS = 8
SEED = 123


@pytest.fixture(scope="module")
def instance():
    return random_hypergraph(80, 130, seed=9, connect=True)


@pytest.fixture(scope="module")
def per_worker_results(instance):
    return {
        k: algorithm1(instance, num_starts=STARTS, seed=SEED, parallel=k)
        for k in (1, 2, 4)
    }


class TestWorkerCountInvariance:
    def test_bipartitions_identical(self, per_worker_results):
        base = per_worker_results[1]
        for k in (2, 4):
            assert per_worker_results[k].bipartition == base.bipartition, (
                f"parallel={k} returned a different cut than parallel=1"
            )

    def test_cutsizes_identical(self, per_worker_results):
        cuts = {k: r.cutsize for k, r in per_worker_results.items()}
        assert len(set(cuts.values())) == 1, cuts

    def test_start_record_streams_identical(self, per_worker_results):
        base = per_worker_results[1].starts
        assert len(base) == STARTS
        for k in (2, 4):
            assert per_worker_results[k].starts == base, (
                f"parallel={k} produced a different StartRecord stream"
            )

    def test_ignored_edges_identical(self, per_worker_results):
        base = per_worker_results[1]
        for k in (2, 4):
            assert per_worker_results[k].ignored_edges == base.ignored_edges


class TestRunToRunDeterminism:
    def test_sequential_is_deterministic(self, instance):
        a = algorithm1(instance, num_starts=STARTS, seed=SEED)
        b = algorithm1(instance, num_starts=STARTS, seed=SEED)
        assert a.bipartition == b.bipartition
        assert a.starts == b.starts

    def test_parallel_is_deterministic(self, instance):
        a = algorithm1(instance, num_starts=STARTS, seed=SEED, parallel=2)
        b = algorithm1(instance, num_starts=STARTS, seed=SEED, parallel=2)
        assert a.bipartition == b.bipartition
        assert a.starts == b.starts

    def test_different_seeds_differ(self, instance):
        """Determinism must come from the seed, not from ignoring it."""
        streams = {
            seed: algorithm1(instance, num_starts=STARTS, seed=seed, parallel=1).starts
            for seed in (1, 2, 3)
        }
        assert len(set(streams.values())) > 1
