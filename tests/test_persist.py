"""Unit tests for the crash-recovery and integrity layers.

Covers, without a live daemon (the end-to-end half lives in
``tests/test_server_recovery.py``):

* :class:`repro.server.persist.StateStore` — round-trip rehydration,
  last-record-wins semantics, per-record checksum validation (corrupt
  records skipped and counted, never served), truncated-tail tolerance,
  foreign-schema refusal, compaction, and breaker-downtime folding;
* :class:`repro.server.admission.QuarantineBreaker` persistence hooks —
  ``export_key`` / ``restore_key`` clock translation and the
  record-returns-cleared contract;
* :mod:`repro.metrics.verify` — the independent re-verification that
  backs the service's boundary integrity gate;
* :func:`repro.runtime.faults.corrupt_bytes` — the digit-flip
  corruption chaos hook;
* :class:`repro.server.cache.ResultCache` under a concurrent hammer —
  the byte/entry accounting invariants hold at every cap.
"""

from __future__ import annotations

import json
import random
import threading

import pytest

from repro.core.hypergraph import Hypergraph
from repro.engines import run_engine
from repro.io.json_io import _encode_label
from repro.metrics import (
    IntegrityError,
    verify_partition_body,
    verify_place_body,
)
from repro.runtime import faults
from repro.runtime.recordlog import encode_line, read_log
from repro.server.admission import POISON_ERROR_TYPES, QuarantineBreaker
from repro.server.cache import ResultCache
from repro.server.persist import StateStore, StateStoreError
from repro.server.protocol import Quarantined, canonical_bytes


@pytest.fixture(autouse=True)
def _no_faults():
    faults.configure(None)
    yield
    faults.configure(None)


# ----------------------------------------------------------------------
# StateStore
# ----------------------------------------------------------------------


class TestStateStoreRoundTrip:
    def test_fresh_store_is_empty(self, tmp_path):
        with StateStore.open(tmp_path) as store:
            assert store.cache_entries == []
            assert store.breaker_entries == []
            assert store.stats()["records"] == 0

    def test_cache_and_breaker_round_trip(self, tmp_path):
        with StateStore.open(tmp_path) as store:
            store.record_cache("d1:f1", b'{"cutsize":3}')
            store.record_cache("d2:f2", b'{"cutsize":7}')
            store.record_breaker("d3:f3", 3, 0.0)
        with StateStore.open(tmp_path) as store:
            assert store.cache_entries == [
                ("d1:f1", b'{"cutsize":3}'),
                ("d2:f2", b'{"cutsize":7}'),
            ]
            [(key, failures, open_elapsed)] = store.breaker_entries
            assert key == "d3:f3"
            assert failures == 3
            # Wall-clock downtime folds into the open time.
            assert open_elapsed >= 0.0

    def test_last_record_wins_and_refreshes_order(self, tmp_path):
        with StateStore.open(tmp_path) as store:
            store.record_cache("a", b'{"v":1}')
            store.record_cache("b", b'{"v":2}')
            store.record_cache("a", b'{"v":3}')
        with StateStore.open(tmp_path) as store:
            # "a" was rewritten after "b": it rehydrates as the fresher
            # entry (the order ResultCache replays into LRU order).
            assert store.cache_entries == [
                ("b", b'{"v":2}'),
                ("a", b'{"v":3}'),
            ]

    def test_breaker_clear_tombstone_wins(self, tmp_path):
        with StateStore.open(tmp_path) as store:
            store.record_breaker("k", 3, 1.0)
            store.record_breaker_clear("k")
        with StateStore.open(tmp_path) as store:
            assert store.breaker_entries == []

    def test_closed_breaker_record_round_trips_none(self, tmp_path):
        with StateStore.open(tmp_path) as store:
            store.record_breaker("k", 2, None)  # failing, not yet open
        with StateStore.open(tmp_path) as store:
            assert store.breaker_entries == [("k", 2, None)]

    def test_downtime_folds_into_open_elapsed(self, tmp_path):
        with StateStore.open(tmp_path) as store:
            store.record_breaker("k", 3, 1.0)
        path = tmp_path / "state.jsonl"
        # Simulate 5 s of daemon downtime by backdating the record's
        # wall timestamp (records are canonical JSON lines).
        lines = path.read_bytes().splitlines(keepends=True)
        record = json.loads(lines[1])
        record["wall"] -= 5.0
        path.write_bytes(lines[0] + encode_line(record))
        with StateStore.open(tmp_path) as store:
            [(_key, _failures, open_elapsed)] = store.breaker_entries
            assert open_elapsed == pytest.approx(6.0, abs=1.0)


class TestStateStoreCorruption:
    def test_checksum_mismatch_is_skipped_and_counted(self, tmp_path):
        with StateStore.open(tmp_path) as store:
            store.record_cache("good", b'{"v":1}')
            store.record_cache("bad", b'{"v":2}')
        path = tmp_path / "state.jsonl"
        lines = path.read_bytes().splitlines(keepends=True)
        record = json.loads(lines[2])
        assert record["key"] == "bad"
        record["value"] = '{"v":9}'  # value no longer matches sha256
        path.write_bytes(lines[0] + lines[1] + encode_line(record))
        with StateStore.open(tmp_path) as store:
            assert store.cache_entries == [("good", b'{"v":1}')]
            assert store.stats()["corrupt_skipped"] == 1

    def test_armed_corruption_site_damages_a_record_detectably(self, tmp_path):
        """The ``server.verify`` chaos rule flips a digit on the way to
        disk; the checksummed read side must drop exactly that record."""
        with StateStore.open(tmp_path) as store:
            store.record_cache("clean", b'{"cutsize":3}')
            faults.configure("server.verify=error:1", seed=3)
            store.record_cache("dirty", b'{"cutsize":7}')
            faults.configure(None)
        with StateStore.open(tmp_path) as store:
            assert ("clean", b'{"cutsize":3}') in store.cache_entries
            assert all(key != "dirty" for key, _ in store.cache_entries)
            assert store.stats()["corrupt_skipped"] == 1

    def test_truncated_tail_is_tolerated(self, tmp_path):
        with StateStore.open(tmp_path) as store:
            store.record_cache("a", b'{"v":1}')
        path = tmp_path / "state.jsonl"
        with open(path, "ab") as fh:
            fh.write(b'{"kind":"cache","key":"half')  # mid-append crash
        with StateStore.open(tmp_path) as store:
            assert store.cache_entries == [("a", b'{"v":1}')]
            # The partial tail was truncated away; appends continue.
            store.record_cache("b", b'{"v":2}')
        with StateStore.open(tmp_path) as store:
            assert [key for key, _ in store.cache_entries] == ["a", "b"]

    def test_garbage_midfile_line_is_skipped_not_fatal(self, tmp_path):
        with StateStore.open(tmp_path) as store:
            store.record_cache("a", b'{"v":1}')
        path = tmp_path / "state.jsonl"
        header, record = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(header + b"!!! not json !!!\n" + record)
        with StateStore.open(tmp_path) as store:
            assert store.stats()["corrupt_skipped"] == 1
            store.record_cache("b", b'{"v":2}')
        with StateStore.open(tmp_path) as store:
            assert [key for key, _ in store.cache_entries] == ["a", "b"]

    def test_foreign_header_is_refused(self, tmp_path):
        path = tmp_path / "state.jsonl"
        path.write_bytes(encode_line({"journal": 1, "task": "bench"}))
        with pytest.raises(StateStoreError, match="refusing to reinterpret"):
            StateStore.open(tmp_path)

    def test_empty_file_restarts_cold(self, tmp_path):
        path = tmp_path / "state.jsonl"
        path.write_bytes(b"")
        with StateStore.open(tmp_path) as store:
            assert store.cache_entries == []
            store.record_cache("a", b'{"v":1}')
        with StateStore.open(tmp_path) as store:
            assert store.cache_entries == [("a", b'{"v":1}')]

    def test_unknown_record_kind_is_skipped(self, tmp_path):
        with StateStore.open(tmp_path) as store:
            store.record_cache("a", b'{"v":1}')
        path = tmp_path / "state.jsonl"
        with open(path, "ab") as fh:
            fh.write(encode_line({"kind": "mystery", "key": "x"}))
        with StateStore.open(tmp_path) as store:
            assert store.cache_entries == [("a", b'{"v":1}')]
            assert store.stats()["corrupt_skipped"] == 1


class TestStateStoreCompaction:
    def test_explicit_compaction_keeps_only_live_records(self, tmp_path):
        with StateStore.open(tmp_path) as store:
            for i in range(10):
                store.record_cache("hot", b'{"v":%d}' % i)
            store.record_breaker("poison", 3, 0.0)
            store.record_breaker("healed", 2, None)
            store.record_breaker_clear("healed")
            before = (tmp_path / "state.jsonl").stat().st_size
            store.compact()
            after = (tmp_path / "state.jsonl").stat().st_size
            stats = store.stats()
            assert after < before
            assert stats["compactions"] == 1
            assert stats["records"] == stats["live"] == 2
            # The store keeps appending to the compacted log.
            store.record_cache("fresh", b'{"v":99}')
        with StateStore.open(tmp_path) as store:
            entries = dict(store.cache_entries)
            assert entries["hot"] == b'{"v":9}'
            assert entries["fresh"] == b'{"v":99}'
            assert store.breaker_entries[0][0] == "poison"

    def test_dead_ratio_triggers_background_compaction(self, tmp_path):
        import time

        store = StateStore.open(
            tmp_path, compact_ratio=0.5, compact_min_records=8
        )
        try:
            for i in range(20):
                store.record_cache("same-key", b'{"v":%d}' % i)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if store.stats()["compactions"] >= 1:
                    break
                time.sleep(0.01)
            stats = store.stats()
            assert stats["compactions"] >= 1
            assert stats["dead"] < stats["records"] or stats["dead"] == 0
        finally:
            store.close()
        with StateStore.open(tmp_path) as store:
            assert dict(store.cache_entries)["same-key"] == b'{"v":19}'

    def test_open_rejects_bad_knobs(self, tmp_path):
        with pytest.raises(StateStoreError):
            StateStore.open(tmp_path, compact_ratio=0.0)
        with pytest.raises(StateStoreError):
            StateStore.open(tmp_path, compact_min_records=0)


# ----------------------------------------------------------------------
# QuarantineBreaker persistence hooks
# ----------------------------------------------------------------------


class TestBreakerExportRestore:
    def _clock(self):
        now = [1000.0]
        return now, (lambda: now[0])

    def test_record_reports_cleared(self):
        now, clock = self._clock()
        breaker = QuarantineBreaker(threshold=2, cooldown=10.0, clock=clock)
        assert breaker.record("k", "WorkerCrashed") is False
        assert breaker.record("k", None) is True  # tracked -> cleared
        assert breaker.record("k", None) is False  # nothing tracked

    def test_integrity_error_is_poison(self):
        assert "IntegrityError" in POISON_ERROR_TYPES
        breaker = QuarantineBreaker(threshold=1, cooldown=10.0)
        breaker.record("k", "IntegrityError")
        with pytest.raises(Quarantined):
            breaker.check("k")

    def test_export_tracks_open_elapsed(self):
        now, clock = self._clock()
        breaker = QuarantineBreaker(threshold=2, cooldown=10.0, clock=clock)
        assert breaker.export_key("k") is None
        breaker.record("k", "WorkerCrashed")
        assert breaker.export_key("k") == {"failures": 1, "open_elapsed": None}
        breaker.record("k", "WorkerCrashed")  # trips open
        now[0] += 4.0
        snapshot = breaker.export_key("k")
        assert snapshot == {"failures": 2, "open_elapsed": pytest.approx(4.0)}

    def test_restore_open_key_keeps_cooling(self):
        now, clock = self._clock()
        breaker = QuarantineBreaker(threshold=2, cooldown=10.0, clock=clock)
        breaker.restore_key("k", failures=2, open_elapsed=4.0)
        with pytest.raises(Quarantined) as excinfo:
            breaker.check("k")
        assert excinfo.value.retry_after == pytest.approx(6.0)

    def test_restore_with_expired_cooldown_admits_one_probe(self):
        now, clock = self._clock()
        breaker = QuarantineBreaker(threshold=2, cooldown=10.0, clock=clock)
        # Open for 25 s total (daemon downtime included): the cooldown
        # already served — the next check is the half-open probe, not a
        # fresh quarantine and not a forgotten key.
        breaker.restore_key("k", failures=2, open_elapsed=25.0)
        assert breaker.check("k") is True
        with pytest.raises(Quarantined):  # concurrent duplicate blocked
            breaker.check("k")
        assert breaker.record("k", None) is True  # clean probe closes it

    def test_restore_closed_key_counts_toward_threshold(self):
        now, clock = self._clock()
        breaker = QuarantineBreaker(threshold=3, cooldown=10.0, clock=clock)
        breaker.restore_key("k", failures=2, open_elapsed=None)
        assert breaker.check("k") is False  # closed: not quarantined
        breaker.record("k", "WorkerCrashed")  # third strike
        with pytest.raises(Quarantined):
            breaker.check("k")

    def test_restore_rejects_nonpositive_failures(self):
        breaker = QuarantineBreaker()
        with pytest.raises(ValueError):
            breaker.restore_key("k", failures=0, open_elapsed=None)


# ----------------------------------------------------------------------
# Independent result verification
# ----------------------------------------------------------------------


def _graph() -> Hypergraph:
    h = Hypergraph(vertices=range(8))
    for i in range(7):
        h.add_edge([i, i + 1], name=f"c{i}")
    h.add_edge([0, 4], name="x0")
    h.add_edge([2, 6], name="x1")
    return h


def _partition_body(h: Hypergraph) -> dict:
    bipartition, extras = run_engine("fm", h, seed=0, starts=2)
    return {
        "op": "partition",
        "engine": "fm",
        "digest": "d0",
        "fingerprint": "f0",
        "settings": {"seed": 0, "starts": 2},
        "cutsize": bipartition.cutsize,
        "weighted_cutsize": bipartition.weighted_cutsize,
        "imbalance_fraction": bipartition.weight_imbalance_fraction,
        "left": sorted((_encode_label(v) for v in bipartition.left), key=repr),
        "right": sorted((_encode_label(v) for v in bipartition.right), key=repr),
        "degraded": False,
        "degrade_reason": None,
    }


class TestVerifyPartitionBody:
    def test_honest_body_passes(self):
        h = _graph()
        body = _partition_body(h)
        verify_partition_body(h, body, digest="d0", fingerprint="f0")

    def test_wrong_digest_fails_identity(self):
        h = _graph()
        body = _partition_body(h)
        with pytest.raises(IntegrityError, match="digest"):
            verify_partition_body(h, body, digest="other")

    def test_tampered_cutsize_is_caught(self):
        h = _graph()
        body = _partition_body(h)
        body["cutsize"] += 1
        with pytest.raises(IntegrityError, match="cutsize"):
            verify_partition_body(h, body)

    def test_tampered_imbalance_is_caught(self):
        h = _graph()
        body = _partition_body(h)
        body["imbalance_fraction"] = body["imbalance_fraction"] + 0.125
        with pytest.raises(IntegrityError, match="imbalance"):
            verify_partition_body(h, body)

    def test_moved_vertex_is_caught(self):
        h = _graph()
        body = _partition_body(h)
        moved = body["left"].pop()
        body["right"].append(moved)
        # The assignment is still a valid cover, but the claimed cut no
        # longer matches the recomputation (or balance shifts) — either
        # way the gate fires.
        with pytest.raises(IntegrityError):
            verify_partition_body(h, body)

    def test_dropped_vertex_is_caught(self):
        h = _graph()
        body = _partition_body(h)
        body["left"] = body["left"][:-1]
        with pytest.raises(IntegrityError, match="cover"):
            verify_partition_body(h, body)

    def test_duplicated_vertex_is_caught(self):
        h = _graph()
        body = _partition_body(h)
        body["right"].append(body["left"][0])
        with pytest.raises(IntegrityError, match="disjoint|duplicate"):
            verify_partition_body(h, body)

    def test_single_digit_flip_in_canonical_bytes_is_caught(self):
        """The exact corruption `server.verify` injects: one digit of
        the canonical bytes XOR 0x01.  Every digit position must be
        detectable via identity, cut, balance, or coverage checks."""
        h = _graph()
        body = _partition_body(h)
        data = canonical_bytes(body)
        digit_positions = [
            i for i, byte in enumerate(data) if 0x30 <= byte <= 0x39
        ]
        assert digit_positions
        rng = random.Random(7)
        for index in rng.sample(digit_positions, min(20, len(digit_positions))):
            flipped = data[:index] + bytes([data[index] ^ 0x01]) + data[index + 1:]
            if flipped == data:
                continue
            tampered = json.loads(flipped)
            with pytest.raises(IntegrityError):
                verify_partition_body(
                    h,
                    tampered,
                    digest="d0",
                    fingerprint="f0",
                    settings={"seed": 0, "starts": 2},
                )


class TestVerifyPlaceBody:
    def _body(self, h: Hypergraph) -> dict:
        return {
            "op": "place",
            "digest": "d0",
            "fingerprint": "f0",
            "grid": {"rows": 2, "cols": 4},
            "positions": [
                [_encode_label(v), [v // 4, v % 4]] for v in range(8)
            ],
        }

    def test_honest_body_passes(self):
        h = _graph()
        verify_place_body(h, self._body(h), digest="d0")

    def test_out_of_grid_slot_is_caught(self):
        h = _graph()
        body = self._body(h)
        body["positions"][0][1] = [5, 0]
        with pytest.raises(IntegrityError, match="outside"):
            verify_place_body(h, body)

    def test_doubled_slot_is_caught(self):
        h = _graph()
        body = self._body(h)
        body["positions"][1][1] = list(body["positions"][0][1])
        with pytest.raises(IntegrityError, match="more than one"):
            verify_place_body(h, body)

    def test_missing_vertex_is_caught(self):
        h = _graph()
        body = self._body(h)
        body["positions"] = body["positions"][:-1]
        with pytest.raises(IntegrityError, match="cover"):
            verify_place_body(h, body)


class TestCorruptBytes:
    def test_unarmed_is_identity(self):
        data = b'{"cutsize":42}'
        assert faults.corrupt_bytes(data, "server.verify") is data

    def test_armed_flips_exactly_one_digit(self):
        faults.configure("server.verify=error:1", seed=5)
        data = b'{"cutsize":42,"n":7}'
        corrupted = faults.corrupt_bytes(data, "server.verify")
        assert corrupted != data
        assert len(corrupted) == len(data)
        diffs = [i for i, (a, b) in enumerate(zip(data, corrupted)) if a != b]
        assert len(diffs) == 1
        index = diffs[0]
        assert 0x30 <= data[index] <= 0x39  # a digit was targeted...
        assert 0x30 <= corrupted[index] <= 0x39  # ...and stayed a digit
        json.loads(corrupted)  # the line is still valid JSON

    def test_digitless_data_passes_through(self):
        faults.configure("server.verify=error:1", seed=5)
        data = b'{"name":"abc"}'
        assert faults.corrupt_bytes(data, "server.verify") == data

    def test_other_sites_untouched(self):
        faults.configure("server.verify=error:1", seed=5)
        data = b'{"cutsize":42}'
        assert faults.corrupt_bytes(data, "server.request") == data

    def test_suppressed_context_disarms(self):
        faults.configure("server.verify=error:1", seed=5)
        data = b'{"cutsize":42}'
        with faults.suppressed():
            assert faults.corrupt_bytes(data, "server.verify") == data


# ----------------------------------------------------------------------
# ResultCache under a concurrent hammer
# ----------------------------------------------------------------------


class TestResultCacheHammer:
    def _hammer(self, cache: ResultCache, threads: int = 8, ops: int = 400):
        errors: list[BaseException] = []

        def loop(worker: int) -> None:
            rng = random.Random(worker)
            try:
                for i in range(ops):
                    key = f"k{rng.randrange(32)}"
                    action = rng.random()
                    if action < 0.6:
                        value = (b"%d:" % worker) + b"x" * rng.randrange(1, 64)
                        cache.put(key, value)
                    elif action < 0.95:
                        cache.get(key)
                    else:
                        len(cache)
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        workers = [
            threading.Thread(target=loop, args=(i,)) for i in range(threads)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=60.0)
        assert not errors

    def _assert_accounting(self, cache: ResultCache) -> None:
        stats = cache.stats()
        with cache._lock:
            actual_bytes = sum(len(v) for v in cache._entries.values())
            actual_entries = len(cache._entries)
        assert stats["bytes"] == actual_bytes
        assert stats["entries"] == actual_entries
        assert stats["bytes"] <= cache.max_bytes
        assert stats["entries"] <= cache.max_entries

    def test_byte_budget_invariants_under_contention(self):
        cache = ResultCache(max_bytes=2048, max_entries=4096)
        self._hammer(cache)
        self._assert_accounting(cache)

    def test_entry_cap_invariants_under_contention(self):
        cache = ResultCache(max_bytes=1 << 20, max_entries=16)
        self._hammer(cache)
        self._assert_accounting(cache)

    def test_both_caps_tight(self):
        cache = ResultCache(max_bytes=512, max_entries=8)
        self._hammer(cache, threads=12, ops=300)
        self._assert_accounting(cache)
        # The survivors must be readable and intact.
        with cache._lock:
            snapshot = dict(cache._entries)
        for key, value in snapshot.items():
            assert cache.get(key) == value

    def test_hammered_stats_still_consistent_counts(self):
        cache = ResultCache(max_bytes=4096, max_entries=64)
        self._hammer(cache)
        stats = cache.stats()
        assert stats["insertions"] >= stats["evictions"]
        assert stats["hits"] + stats["misses"] > 0


# ----------------------------------------------------------------------
# read_log skip mode (the state-store read discipline)
# ----------------------------------------------------------------------


class TestReadLogSkipMode:
    def test_skip_collects_corrupt_line_numbers(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_bytes(
            encode_line({"header": 1})
            + encode_line({"kind": "a"})
            + b"garbage\n"
            + encode_line({"kind": "b"})
        )
        header, records, durable, corrupt = read_log(path, on_corrupt="skip")
        assert header == {"header": 1}
        assert [obj["kind"] for _ln, obj in records] == ["a", "b"]
        assert corrupt == [3]
        assert durable == path.stat().st_size

    def test_raise_mode_still_raises(self, tmp_path):
        from repro.runtime.recordlog import RecordLogFormatError

        path = tmp_path / "log.jsonl"
        path.write_bytes(
            encode_line({"header": 1}) + b"garbage\n" + encode_line({"k": 1})
        )
        with pytest.raises(RecordLogFormatError, match="line 2"):
            read_log(path)

    def test_bad_mode_rejected(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_bytes(encode_line({"header": 1}))
        with pytest.raises(ValueError, match="on_corrupt"):
            read_log(path, on_corrupt="ignore")
