"""Tests for the multilevel partitioner and its coarsening pass."""

import random

import pytest
from hypothesis import given, settings

from repro.baselines.multilevel import CoarseLevel, coarsen_once, multilevel_bipartition
from repro.core.hypergraph import Hypergraph
from repro.core.validation import brute_force_min_cut, check_bipartition
from repro.generators.difficult import planted_bisection
from repro.generators.netlists import clustered_netlist
from tests.conftest import hypergraphs


@pytest.fixture
def netlist():
    return clustered_netlist(80, 150, "std_cell", seed=31)


class TestCoarsenOnce:
    def test_shrinks(self, netlist):
        level = coarsen_once(netlist, random.Random(0), max_vertex_weight=1e9)
        assert level.hypergraph.num_vertices < netlist.num_vertices
        assert level.hypergraph.num_vertices >= netlist.num_vertices // 2

    def test_vertex_map_total(self, netlist):
        level = coarsen_once(netlist, random.Random(0), max_vertex_weight=1e9)
        assert set(level.vertex_map) == set(netlist.vertices)
        assert set(level.vertex_map.values()) == set(level.hypergraph.vertices)

    def test_weight_conserved(self, netlist):
        level = coarsen_once(netlist, random.Random(0), max_vertex_weight=1e9)
        assert level.hypergraph.total_vertex_weight == pytest.approx(
            netlist.total_vertex_weight
        )

    def test_weight_cap_respected(self):
        h = Hypergraph(edges={"n": ["a", "b"]})
        h.set_vertex_weight("a", 10.0)
        h.set_vertex_weight("b", 10.0)
        level = coarsen_once(h, random.Random(0), max_vertex_weight=15.0)
        assert level.hypergraph.num_vertices == 2  # contraction refused

    def test_contraction_merges_matched_pair(self):
        # Path a-b-c-d: a greedy maximal matching contracts either two
        # pairs (-> 2 coarse vertices) or the middle pair (-> 3).
        h = Hypergraph(edges={"n": ["a", "b"], "m": ["b", "c"], "o": ["c", "d"]})
        level = coarsen_once(h, random.Random(0), max_vertex_weight=1e9)
        assert 2 <= level.hypergraph.num_vertices <= 3

    def test_swallowed_nets_dropped(self):
        h = Hypergraph(edges={"pair": ["a", "b"]})
        level = coarsen_once(h, random.Random(0), max_vertex_weight=1e9)
        assert level.hypergraph.num_vertices == 1
        assert level.hypergraph.num_edges == 0

    def test_parallel_nets_merge_weights(self):
        h = Hypergraph()
        h.add_edge(["a", "b"], name="x", weight=1.0)
        h.add_edge(["a", "c"], name="y", weight=2.0)
        h.add_edge(["b", "c"], name="z", weight=4.0)
        level = coarsen_once(h, random.Random(0), max_vertex_weight=1e9)
        if level.hypergraph.num_vertices == 2:
            # two of the three nets became parallel and merged
            total = sum(level.hypergraph.edge_weight(e) for e in level.hypergraph.edge_names)
            assert total == pytest.approx(7.0) or total == pytest.approx(3.0) or total == pytest.approx(6.0) or total == pytest.approx(5.0)
            assert level.hypergraph.num_edges == 1

    @settings(max_examples=25, deadline=None)
    @given(hypergraphs(weighted=True))
    def test_cut_preserved_under_projection(self, h):
        """Any coarse cut projects to a fine cut of identical cutsize on
        surviving nets: contraction never *creates* crossings."""
        level = coarsen_once(h, random.Random(0), max_vertex_weight=1e9)
        coarse = level.hypergraph
        if coarse.num_vertices < 2:
            return
        vertices = sorted(coarse.vertices)
        left_coarse = set(vertices[: len(vertices) // 2]) or {vertices[0]}
        fine_left = {v for v in h.vertices if level.vertex_map[v] in left_coarse}
        from repro.metrics.cut import weighted_cutsize

        coarse_cut = weighted_cutsize(coarse, left_coarse)
        fine_cut = weighted_cutsize(h, fine_left)
        assert fine_cut == pytest.approx(coarse_cut)


class TestMultilevel:
    def test_valid_result(self, netlist):
        result = multilevel_bipartition(netlist, seed=0)
        check_bipartition(result.bipartition)
        assert result.bipartition.weight_imbalance_fraction <= 0.2

    def test_deterministic(self, netlist):
        a = multilevel_bipartition(netlist, seed=5)
        b = multilevel_bipartition(netlist, seed=5)
        assert a.cutsize == b.cutsize

    def test_competitive_with_flat_fm(self, netlist):
        from repro.baselines.fiduccia_mattheyses import fiduccia_mattheyses

        ml = multilevel_bipartition(netlist, seed=0)
        fm = fiduccia_mattheyses(netlist, seed=0)
        assert ml.cutsize <= fm.cutsize * 1.3 + 2

    def test_finds_planted_cut(self):
        inst = planted_bisection(120, 170, crossing_edges=2, seed=7)
        result = multilevel_bipartition(inst.hypergraph, seed=0)
        assert result.cutsize <= 4

    def test_small_instance_skips_coarsening(self):
        h = clustered_netlist(20, 35, "std_cell", seed=1)
        result = multilevel_bipartition(h, coarsest_size=40, seed=0)
        assert result.iterations == 1  # no levels built
        check_bipartition(result.bipartition)

    def test_history_tracks_levels(self, netlist):
        result = multilevel_bipartition(netlist, coarsest_size=10, seed=0)
        assert len(result.history) == result.iterations

    def test_tiny_input_rejected(self):
        with pytest.raises(ValueError):
            multilevel_bipartition(Hypergraph(vertices=["x"]))

    def test_near_optimal_on_small(self):
        rng = random.Random(2)
        h = Hypergraph(vertices=range(12))
        for _ in range(18):
            h.add_edge(rng.sample(range(12), 2))
        result = multilevel_bipartition(h, coarsest_size=6, seed=0)
        optimum = brute_force_min_cut(h, max_imbalance=4).cutsize
        assert result.cutsize <= optimum + 4
