"""Chaos suite: fault injection against the whole execution runtime.

These tests arm ``repro.runtime.faults`` plans that crash, kill, or hang
a large fraction of worker processes (and whole portfolio engines) and
assert the ISSUE acceptance criteria: runs still deliver *valid*
bipartitions, deadline runs finish within deadline + 10% grace with
``degraded=True``, and a portfolio only raises when every engine fails.

All tests are marked ``chaos`` (deselect with ``-m 'not chaos'``); CI
runs them in a dedicated job.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.algorithm1 import Algorithm1Error, algorithm1
from repro.generators import random_hypergraph
from repro.io.hgr import write_hgr
from repro.portfolio import PortfolioError, best_partition
from repro.runtime import faults

pytestmark = pytest.mark.chaos

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(autouse=True)
def _clean_fault_plan():
    yield
    faults.configure(None)


@pytest.fixture(scope="module")
def instance():
    return random_hypergraph(60, 100, seed=5, connect=True)


def assert_valid_bipartition(h, bp):
    left, right = set(bp.left), set(bp.right)
    assert left and right
    assert not (left & right)
    assert left | right == set(h.vertices)


# ----------------------------------------------------------------------
# Acceptance: killing/hanging up to half the workers


class TestWorkerChaos:
    def test_killing_half_the_workers_still_yields_valid_bipartition(self, instance):
        faults.configure("parallel.start=kill:0.5", seed=11)
        result = algorithm1(instance, num_starts=8, seed=42, parallel=4, max_retries=2)
        assert_valid_bipartition(instance, result.bipartition)
        assert 1 <= len(result.starts) <= 8
        assert result.counters["num_starts"] == len(result.starts)

    def test_crashing_half_the_workers_still_yields_valid_bipartition(self, instance):
        faults.configure("parallel.start=crash:0.5", seed=13)
        result = algorithm1(instance, num_starts=8, seed=42, parallel=4, max_retries=2)
        assert_valid_bipartition(instance, result.bipartition)
        assert result.counters["num_starts"] == len(result.starts)

    def test_hanging_half_the_workers_still_yields_valid_bipartition(self, instance):
        faults.configure("parallel.start=hang:0.5:30", seed=17)
        result = algorithm1(
            instance,
            num_starts=8,
            seed=42,
            parallel=4,
            task_timeout=0.3,
            max_retries=2,
        )
        assert_valid_bipartition(instance, result.bipartition)
        assert result.counters["num_starts"] == len(result.starts)

    def test_total_loss_raises_rather_than_fabricating(self, instance):
        # Hang-mode faults never reach the sequential fallback (a hung
        # task cannot safely rerun in-process), so probability 1 means
        # every start is lost — the honest outcome is an error.
        faults.configure("parallel.start=hang:1:30", seed=19)
        with pytest.raises(Algorithm1Error, match="all parallel starts failed"):
            algorithm1(
                instance,
                num_starts=4,
                seed=42,
                parallel=2,
                task_timeout=0.25,
                max_retries=0,
            )

    def test_slow_faults_only_delay(self, instance):
        faults.configure("parallel.start=slow:1:0.01", seed=23)
        result = algorithm1(instance, num_starts=4, seed=42, parallel=2)
        assert_valid_bipartition(instance, result.bipartition)
        assert result.counters["num_starts"] == 4


# ----------------------------------------------------------------------
# Acceptance: deadline + 10% grace, degraded=True


class TestDeadlineGrace:
    GRACE = 1.10

    def test_sequential_deadline_respected_within_grace(self, instance):
        budget = 0.6
        started = time.monotonic()
        result = algorithm1(instance, num_starts=100_000, seed=1, deadline=budget)
        elapsed = time.monotonic() - started
        assert elapsed <= budget * self.GRACE
        assert result.degraded is True
        assert "deadline" in result.degrade_reason
        assert_valid_bipartition(instance, result.bipartition)

    def test_parallel_deadline_respected_within_grace(self, instance):
        budget = 0.6
        started = time.monotonic()
        result = algorithm1(
            instance, num_starts=2000, seed=1, parallel=2, deadline=budget
        )
        elapsed = time.monotonic() - started
        # Parallel teardown (terminate + join) gets the same grace.
        assert elapsed <= budget * self.GRACE + 0.5
        assert result.degraded is True
        assert_valid_bipartition(instance, result.bipartition)


# ----------------------------------------------------------------------
# Portfolio crash isolation


class TestPortfolioChaos:
    def test_single_engine_failure_is_isolated(self, instance):
        faults.configure("portfolio.engine.fm=error:1", seed=0)
        result = best_partition(instance, seed=0, num_starts=2)
        assert result.degraded
        failed = [e for e in result.entries if e.failed]
        assert [e.method for e in failed] == ["fm"]
        assert "FaultInjected" in failed[0].error
        assert result.winner != "fm"
        assert_valid_bipartition(instance, result.bipartition)

    def test_all_engines_failing_raises_portfolio_error(self, instance):
        faults.configure("portfolio.engine.*=error:1", seed=0)
        with pytest.raises(PortfolioError, match="all .* portfolio engines failed"):
            best_partition(instance, seed=0, num_starts=2, methods=("fm", "kl", "sa"))

    def test_on_error_raise_escalates_immediately(self, instance):
        faults.configure("portfolio.engine.algorithm1=error:1", seed=0)
        with pytest.raises(faults.FaultInjected):
            best_partition(instance, seed=0, num_starts=2, on_error="raise")


# ----------------------------------------------------------------------
# Env-var arming: forked children and fresh processes inherit the plan


class TestEnvironmentArming:
    def test_cli_inherits_fault_plan_from_environment(self, tmp_path, instance):
        path = tmp_path / "chaos.hgr"
        write_hgr(instance, path)
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        env["REPRO_FAULTS"] = "portfolio.engine.fm=error:1"
        env["REPRO_FAULTS_SEED"] = "0"
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "portfolio", str(path), "--seed", "0", "--starts", "2"],
            capture_output=True,
            text=True,
            env=env,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        assert "FAILED" in proc.stdout
        assert "degraded" in proc.stdout


# ----------------------------------------------------------------------
# Supervised bench fan-out: kill/hang half the bench workers


class TestBenchChaos:
    GRACE = 1.10

    def test_killing_half_the_bench_workers_completes_every_pair(self):
        from repro.bench import QUICK_SUITE, run_bench

        faults.configure("bench.pair=kill:0.5", seed=31)
        payload = run_bench(
            "chaos",
            cases=QUICK_SUITE,
            engines=("random", "fm"),
            starts=1,
            repeats=1,
            parallel=2,
            task_timeout=60.0,
        )
        faults.configure(None)
        assert len(payload["results"]) == 6
        for entry in payload["results"]:
            if entry.get("failed"):
                assert isinstance(entry["error"], str) and entry["error"]
            else:
                assert entry["cutsize"] >= 0

        # Survivors must report exactly the sequential truth: retries do
        # not reseed, so a pair that reported at all reported the same
        # deterministic numbers the sequential path produces.
        sequential = run_bench(
            "ref",
            cases=QUICK_SUITE,
            engines=("random", "fm"),
            starts=1,
            repeats=1,
        )
        ref = {(e["instance"], e["engine"]): e for e in sequential["results"]}

        def strip(entry):
            return {
                k: v
                for k, v in entry.items()
                if k not in ("seconds", "spans", "phases")
            }

        for entry in payload["results"]:
            if not entry.get("failed"):
                assert strip(entry) == strip(ref[(entry["instance"], entry["engine"])])

    def test_hanging_bench_workers_fail_within_deadline_grace(self):
        from repro.bench import QUICK_SUITE, run_bench

        faults.configure("bench.pair=hang:0.5:30", seed=7)
        budget = 5.0
        started = time.monotonic()
        payload = run_bench(
            "hangs",
            cases=QUICK_SUITE,
            engines=("random", "fm"),
            starts=1,
            repeats=1,
            parallel=2,
            task_timeout=0.5,
            max_retries=0,
            total_deadline_seconds=budget,
        )
        elapsed = time.monotonic() - started
        # Worker teardown (terminate + join) gets the same grace as the
        # parallel deadline tests above.
        assert elapsed <= budget * self.GRACE + 0.5
        assert len(payload["results"]) == 6
        for entry in payload["results"]:
            if entry.get("failed"):
                assert entry["error"]  # per-pair error string, not a silent gap
            else:
                assert entry["cutsize"] >= 0
        sup = payload["supervision"]
        if sup["hangs"] or sup["failed"]:
            assert sup["degraded"] is True
            assert sup["summary"] != "clean"

    def test_bench_crash_faults_surface_in_supervision_report(self):
        from repro.bench import QUICK_SUITE, run_bench

        faults.configure("bench.pair=crash:1", seed=3)
        payload = run_bench(
            "crashes",
            cases=QUICK_SUITE[:1],
            engines=("random",),
            starts=1,
            repeats=1,
            parallel=2,
            max_retries=1,
        )
        faults.configure(None)
        # Every forked attempt crashes; the hardened sequential fallback
        # (faults suppressed) still delivers the pair.
        [entry] = payload["results"]
        assert not entry.get("failed")
        assert entry["cutsize"] >= 0
        sup = payload["supervision"]
        assert sup["crashes"] >= 1
        assert sup["sequential_fallbacks"] >= 1
        assert sup["degraded"] is True


# ----------------------------------------------------------------------
# Memory-budget chaos: oom faults at the worker sites.  Keep "oom" in
# every test name — the CI chaos matrix splits on `-k oom`.


class TestOomChaos:
    def test_oom_in_half_the_bench_workers_completes_the_run(self):
        from repro.bench import QUICK_SUITE, run_bench

        faults.configure("bench.pair=oom:0.5", seed=37)
        payload = run_bench(
            "oom",
            cases=QUICK_SUITE,
            engines=("random", "fm"),
            starts=1,
            repeats=1,
            parallel=2,
            memory_limit_mb=8192,
        )
        faults.configure(None)
        assert len(payload["results"]) == 6
        # The fault rng is decorrelated per worker pid, so the hit set
        # varies run to run; ~98% of runs inject at least one oom.
        over_budget = [e for e in payload["results"] if e.get("failed")]
        for entry in over_budget:
            assert "memory budget" in entry["error"]
        sup = payload["supervision"]
        assert sup["memory_kills"] == len(over_budget)
        assert sup["retries"] == 0  # memory failures are terminal
        assert sup["sequential_fallbacks"] == 0  # never rerun in the parent
        assert sup["degraded"] is bool(over_budget)

        # Survivors are byte-identical to the sequential truth.
        sequential = run_bench(
            "ref",
            cases=QUICK_SUITE,
            engines=("random", "fm"),
            starts=1,
            repeats=1,
        )
        ref = {(e["instance"], e["engine"]): e for e in sequential["results"]}

        def strip(entry):
            return {
                k: v for k, v in entry.items() if k not in ("seconds", "spans", "phases")
            }

        for entry in payload["results"]:
            if not entry.get("failed"):
                assert strip(entry) == strip(ref[(entry["instance"], entry["engine"])])

    def test_oom_in_half_the_starts_still_yields_valid_bipartition(self, instance):
        faults.configure("parallel.start=oom:0.5", seed=41)
        try:
            result = algorithm1(instance, num_starts=8, seed=42, parallel=4)
        except Algorithm1Error as exc:
            # Memory failures are terminal (no retry, no fallback), so
            # a full wipeout — every start over budget, ~2^-8 per run —
            # is a legitimate outcome; it must surface as the typed
            # all-failed error naming the budget, never a raw crash.
            assert "all parallel starts failed" in str(exc)
            assert "memory" in str(exc)
            return
        finally:
            faults.configure(None)
        assert_valid_bipartition(instance, result.bipartition)
        assert 1 <= len(result.starts) <= 8
        assert result.counters["num_starts"] == len(result.starts)

    def test_oom_faults_never_kill_a_journaled_resume(self, instance, tmp_path):
        # A journaled run under oom chaos keeps its completed starts; a
        # clean resume finishes the rest and matches the fault-free run.
        path = tmp_path / "oom.jsonl"
        reference = algorithm1(instance, num_starts=8, seed=42, parallel=2)
        faults.configure("parallel.start=oom:0.4", seed=43)
        try:
            algorithm1(instance, num_starts=8, seed=42, parallel=2, journal_path=path)
        except Algorithm1Error:
            pass  # rare full wipeout; the journal (header only) still resumes
        finally:
            faults.configure(None)
        resumed = algorithm1(instance, num_starts=8, seed=42, parallel=2, resume_path=path)
        assert resumed.starts == reference.starts
        assert resumed.cutsize == reference.cutsize
        assert not resumed.degraded
