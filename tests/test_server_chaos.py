"""Chaos tests for the partition service: the daemon must outlive its work.

Fault injection at the ``server.request`` site (inside the forked pool
worker) drives worker kills, hangs, and memory blow-ups through a live
daemon.  The contract under test:

* a crashed / hung / over-budget request becomes a **typed, structured
  error response** (500 with a stable ``error.type``) — never a stack
  trace, never a daemon death;
* the daemon keeps answering ``/healthz`` and serving other requests
  throughout, and returns to full service the moment faults clear;
* cache entries survive the chaos (results are content-addressed, not
  session-addressed).

Run with ``-m chaos`` (the tier-1 run deselects these).
"""

from __future__ import annotations

import json
import os
import signal
import socket as socket_module
import subprocess
import sys
import time

import pytest

from repro import obs
from repro.core.hypergraph import Hypergraph
from repro.io import write_json
from repro.io.json_io import hypergraph_to_payload
from repro.runtime import faults
from repro.server import (
    PartitionService,
    ServiceClient,
    ServiceConfig,
    ServiceResponseError,
)

pytestmark = pytest.mark.chaos


@pytest.fixture(autouse=True)
def _clean_slate():
    """No fault config or obs state leaks in either direction."""
    faults.configure(None)
    obs.disable()
    obs.registry().clear()
    yield
    faults.configure(None)
    obs.disable()
    obs.registry().clear()


@pytest.fixture
def h() -> Hypergraph:
    graph = Hypergraph(vertices=range(10))
    for i in range(9):
        graph.add_edge([i, i + 1], name=f"c{i}")
    graph.add_edge([0, 5], name="x0")
    graph.add_edge([2, 7], name="x1")
    return graph


def _start(**config_kwargs):
    config_kwargs.setdefault("batch_window", 0.0)
    config = ServiceConfig(port=0, **config_kwargs)
    svc = PartitionService(config).start()
    client = ServiceClient(url=svc.url, timeout=120.0)
    client.wait_ready(timeout=10.0)
    return svc, client


class TestChaosSession:
    def test_kill_hang_and_oom_in_one_session(self, h):
        """The acceptance scenario: worker kill + hang + over-budget
        request in one daemon session, typed error for each, daemon
        healthy throughout, full service afterwards."""
        svc, client = _start(
            workers=2,
            max_retries=0,
            task_timeout=1.5,
            memory_limit_mb=256,
        )
        try:
            # Healthy baseline; also plants a cache entry for later.
            baseline = client.partition(h, engine="fm", settings={"seed": 0})
            assert baseline["served"]["cache"] == "miss"

            # 1. Worker killed mid-request -> typed crash error.
            faults.configure("server.request=kill:1", seed=11)
            with pytest.raises(ServiceResponseError) as excinfo:
                client.partition(h, engine="fm", settings={"seed": 1})
            assert excinfo.value.status == 500
            assert excinfo.value.error_type == "WorkerCrashed"
            assert "Traceback" not in json.dumps(excinfo.value.error)
            assert client.healthz()["status"] == "ok"

            # 2. Worker hangs past the task timeout -> typed hang error.
            faults.configure("server.request=hang:1:30", seed=13)
            with pytest.raises(ServiceResponseError) as excinfo:
                client.partition(h, engine="fm", settings={"seed": 2})
            assert excinfo.value.status == 500
            assert excinfo.value.error_type == "WorkerHung"
            assert client.healthz()["status"] == "ok"

            # 3. Worker blows its memory budget -> typed budget error.
            faults.configure("server.request=oom:1", seed=17)
            with pytest.raises(ServiceResponseError) as excinfo:
                client.partition(h, engine="fm", settings={"seed": 3})
            assert excinfo.value.status == 500
            assert excinfo.value.error_type == "MemoryBudgetExceeded"
            assert client.healthz()["status"] == "ok"

            # Faults off: the daemon returns to full service at once.
            faults.configure(None)
            fresh = client.partition(h, engine="fm", settings={"seed": 4})
            assert fresh["served"]["cache"] == "miss"
            # The pre-chaos cache entry survived the whole ordeal.
            cached = client.partition(h, engine="fm", settings={"seed": 0})
            assert cached["served"]["cache"] == "hit"
            assert cached["result"] == baseline["result"]
            metrics = client.metrics()
            assert metrics["service"]["failures"] >= 3
            assert metrics["obs"]["counters"]["server.errors"] >= 3
        finally:
            svc.stop()

    def test_crash_is_retried_then_reported_with_attempts(self, h):
        svc, client = _start(workers=1, max_retries=2)
        try:
            faults.configure("server.request=kill:1", seed=7)
            with pytest.raises(ServiceResponseError) as excinfo:
                client.partition(h, engine="fm", settings={"seed": 9})
            # max_retries=2 -> 3 attempts, all killed, then a typed error.
            assert excinfo.value.error["attempts"] == 3
            assert excinfo.value.error_type == "WorkerCrashed"
        finally:
            svc.stop()

    def test_probabilistic_crashes_leave_other_requests_alone(self, h):
        svc, client = _start(workers=2, max_retries=3)
        try:
            # 50% kill rate with retries: every request should still
            # eventually succeed (p(4 kills in a row) = 1/16 per
            # request, and the deterministic per-pid rng makes the
            # outcome reproducible for a fixed seed).
            faults.configure("server.request=kill:0.5", seed=23)
            statuses = []
            for seed in range(6):
                try:
                    response = client.partition(
                        h, engine="fm", settings={"seed": seed}
                    )
                    statuses.append(response["served"]["cache"])
                except ServiceResponseError as exc:
                    statuses.append(exc.error_type)
            assert client.healthz()["status"] == "ok"
            # Deterministic engines: whatever survived reports the true cut.
            faults.configure(None)
            clean = client.partition(h, engine="fm", settings={"seed": 0})
            assert clean["result"]["cutsize"] >= 1
        finally:
            svc.stop()

    def test_cache_hits_bypass_faults_entirely(self, h):
        svc, client = _start(workers=1, max_retries=0)
        try:
            warm = client.partition(h, engine="fm", settings={"seed": 0})
            faults.configure("server.request=kill:1", seed=3)
            # A cache hit never reaches the pool, so it succeeds even
            # while every execution is being killed.
            hit = client.partition(h, engine="fm", settings={"seed": 0})
            assert hit["served"]["cache"] == "hit"
            assert hit["result"] == warm["result"]
            with pytest.raises(ServiceResponseError):
                client.partition(h, engine="fm", settings={"seed": 1})
        finally:
            svc.stop()

    def test_slow_faults_only_slow_things_down(self, h):
        svc, client = _start(workers=2, max_retries=0, task_timeout=30.0)
        try:
            faults.configure("server.request=slow:1:0.05", seed=5)
            response = client.partition(h, engine="fm", settings={"seed": 0})
            assert response["served"]["cache"] == "miss"
            assert response["result"]["cutsize"] >= 1
        finally:
            svc.stop()


class TestEnvDrivenFaults:
    """The REPRO_FAULTS env grammar reaches a daemon subprocess."""

    def test_daemon_subprocess_with_env_faults(self, tmp_path, h):
        graph_path = tmp_path / "h.json"
        write_json(h, graph_path)
        socket_path = str(tmp_path / "svc.sock")
        if not hasattr(socket_module, "AF_UNIX"):
            pytest.skip("AF_UNIX sockets are not available on this platform")
        env = dict(
            os.environ,
            PYTHONPATH="src",
            REPRO_FAULTS="server.request=kill:1",
        )
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--socket",
                socket_path,
                "--workers",
                "1",
                "--max-retries",
                "0",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            banner = proc.stdout.readline().strip()
            assert banner == f"serving on unix:{socket_path}"
            client = ServiceClient(socket_path=socket_path, timeout=60.0)
            client.wait_ready(timeout=10.0)
            with pytest.raises(ServiceResponseError) as excinfo:
                client.partition(h, engine="fm", settings={"seed": 0})
            assert excinfo.value.error_type == "WorkerCrashed"
            assert client.healthz()["status"] == "ok"
        finally:
            proc.send_signal(signal.SIGTERM)
            try:
                proc.wait(timeout=15)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=15)


class TestBrokerUnderChaos:
    def test_coalesced_requests_share_the_failure(self, h):
        import threading

        svc, client = _start(workers=1, max_retries=0, batch_window=0.25)
        try:
            faults.configure("server.request=kill:1", seed=29)
            body = {
                "op": "partition",
                "engine": "fm",
                "hypergraph": hypergraph_to_payload(h),
                "settings": {"seed": 42},
            }
            raw = json.dumps(body).encode()
            n = 4
            barrier = threading.Barrier(n)
            outcomes: list[tuple[int, str]] = []
            lock = threading.Lock()

            def fire():
                barrier.wait(timeout=10)
                status, response = client.request_raw("POST", "/partition", raw)
                with lock:
                    outcomes.append(
                        (status, json.loads(response)["error"]["type"])
                    )

            threads = [threading.Thread(target=fire) for _ in range(n)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert len(outcomes) == n
            assert all(status == 500 for status, _ in outcomes)
            assert all(kind == "WorkerCrashed" for _, kind in outcomes)
            # One execution attempt served all coalesced waiters its error.
            assert client.metrics()["service"]["executions"] == 1
            # Failures are not cached: the next attempt executes afresh.
            faults.configure(None)
            clean = client.partition(h, engine="fm", settings={"seed": 42})
            assert clean["served"]["cache"] == "miss"
        finally:
            svc.stop()

    def test_daemon_restarts_cleanly_after_chaos(self, h, tmp_path):
        # Two sequential daemons on the same UNIX socket path: the
        # second start must not trip over the first session's corpse.
        if not hasattr(socket_module, "AF_UNIX"):
            pytest.skip("AF_UNIX sockets are not available on this platform")
        path = str(tmp_path / "svc.sock")
        svc = PartitionService(
            ServiceConfig(socket_path=path, workers=1, max_retries=0, batch_window=0.0)
        ).start()
        client = ServiceClient(socket_path=path, timeout=60.0)
        client.wait_ready(timeout=10.0)
        faults.configure("server.request=kill:1", seed=31)
        with pytest.raises(ServiceResponseError):
            client.partition(h, engine="fm", settings={"seed": 0})
        svc.stop()
        faults.configure(None)
        svc2 = PartitionService(
            ServiceConfig(socket_path=path, workers=1, batch_window=0.0)
        ).start()
        try:
            client2 = ServiceClient(socket_path=path, timeout=60.0)
            client2.wait_ready(timeout=10.0)
            response = client2.partition(h, engine="fm", settings={"seed": 0})
            assert response["served"]["cache"] == "miss"
        finally:
            svc2.stop()
