"""Tests for the theorem-validation analysis package (small parameters)."""

import math
import random

import pytest

from repro.analysis.boundary import boundary_fraction, boundary_fraction_experiment
from repro.analysis.crossing import (
    crossing_probability_experiment,
    predicted_crossing_probability,
)
from repro.analysis.diameter import (
    bfs_depth_vs_diameter,
    diameter_growth_experiment,
    pseudo_diameter_experiment,
)
from repro.analysis.scaling import fit_power_law, runtime_scaling_experiment
from repro.generators.random_hypergraph import random_hypergraph, random_regular_graph


class TestDiameter:
    def test_bfs_depth_bounded_by_diameter(self):
        rng = random.Random(0)
        for seed in range(5):
            g = random_regular_graph(40, 3, seed=seed)
            if not g.is_connected():
                continue
            depth, diam = bfs_depth_vs_diameter(g, rng)
            assert depth <= diam
            assert depth >= (diam + 1) // 2  # BFS depth >= radius >= diam/2

    def test_pseudo_diameter_experiment(self):
        records = pseudo_diameter_experiment(sizes=(30, 60), trials=3, seed=0)
        assert records
        for r in records:
            assert 0 <= r.gap <= r.diameter

    def test_gaps_are_small_constants(self):
        """The paper's theorem: depth = diam - O(1) w.h.p."""
        records = pseudo_diameter_experiment(sizes=(60, 120), degree=3, trials=5, seed=1)
        gaps = [r.gap for r in records]
        assert sum(gaps) / len(gaps) <= 2.0

    def test_diameter_growth_logarithmic(self):
        rows = diameter_growth_experiment(sizes=(40, 80, 160), degree=3, trials=2, seed=0)
        ratios = [r["diameter_over_log2n"] for r in rows]
        assert len(rows) == 3
        # O(log n): the ratio stays within a narrow constant band.
        assert max(ratios) / min(ratios) < 2.5


class TestBoundary:
    def test_boundary_fraction_sample(self):
        rng = random.Random(0)
        h = random_hypergraph(60, 90, seed=1, connect=True)
        sample = boundary_fraction(h, rng)
        assert 0 <= sample.boundary_fraction <= 1
        assert sample.num_graph_nodes == h.num_edges

    def test_experiment_rows(self):
        rows = boundary_fraction_experiment(sizes=(50, 100), trials=2, seed=0)
        assert len(rows) == 2
        for row in rows:
            assert 0 <= row["mean_boundary_fraction"] <= 1

    def test_netlist_kind(self):
        rows = boundary_fraction_experiment(sizes=(50,), trials=2, kind="netlist", seed=0)
        assert rows[0]["kind"] == "netlist"

    def test_bad_kind(self):
        with pytest.raises(ValueError):
            boundary_fraction_experiment(kind="bogus")


class TestCrossing:
    def test_prediction_formula(self):
        assert predicted_crossing_probability(2) == 0.5
        assert predicted_crossing_probability(10) == pytest.approx(1 - 2**-9)
        assert predicted_crossing_probability(1) == 0.0

    def test_experiment_monotone_in_k(self):
        records = crossing_probability_experiment(
            num_vertices=80,
            base_edges=120,
            probe_sizes=(2, 8, 16),
            probes_per_size=10,
            trials=2,
            seed=0,
        )
        by_size = {r.edge_size: r.fraction for r in records}
        # Large edges cross (almost) always; small ones much less.
        assert by_size[16] >= 0.9
        assert by_size[16] >= by_size[2]

    def test_bad_partitioner(self):
        with pytest.raises(ValueError):
            crossing_probability_experiment(partitioner="bogus")


class TestScaling:
    def test_fit_power_law_exact(self):
        ns = [10.0, 20.0, 40.0, 80.0]
        times = [n**2 for n in ns]
        assert fit_power_law(ns, times) == pytest.approx(2.0)

    def test_fit_rejects_bad_input(self):
        with pytest.raises(ValueError):
            fit_power_law([1.0], [1.0])
        with pytest.raises(ValueError):
            fit_power_law([1.0, 2.0], [0.0, 1.0])
        with pytest.raises(ValueError):
            fit_power_law([1.0, 2.0], [1.0])

    def test_runtime_experiment_rows(self):
        rows = runtime_scaling_experiment(sizes=(30, 60), algorithms=("algorithm1",), seed=0)
        assert len(rows) == 2
        assert all(row["seconds_algorithm1"] > 0 for row in rows)

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            runtime_scaling_experiment(algorithms=("quantum",))
