"""Tests for random longest BFS paths, double-BFS cuts, and projection."""

import random

import pytest
from hypothesis import given, settings

from repro.core.dual_cut import (
    DualCutError,
    double_bfs_cut,
    partial_bipartition,
    random_longest_bfs_path,
)
from repro.core.graph import Graph, GraphError
from repro.core.hypergraph import Hypergraph
from repro.core.intersection import intersection_graph
from repro.core.validation import check_graph_cut, check_partial_bipartition
from tests.conftest import connected_hypergraphs


def path_graph(n):
    return Graph(nodes=range(n), edges=[(i, i + 1) for i in range(n - 1)])


class TestRandomLongestBfsPath:
    def test_path_graph_finds_far_end(self):
        g = path_graph(10)
        u, v, depth = random_longest_bfs_path(g, rng=random.Random(0), start=0)
        assert (u, v, depth) == (0, 9, 9)

    def test_random_start_is_valid_node(self):
        g = path_graph(10)
        u, v, depth = random_longest_bfs_path(g, rng=random.Random(3))
        assert u in g and v in g
        assert g.bfs_levels(u)[v] == depth

    def test_double_sweep_at_least_as_deep(self):
        rng = random.Random(1)
        for seed in range(10):
            g = Graph()
            r = random.Random(seed)
            nodes = list(range(20))
            for i in range(1, 20):
                g.add_edge(i, r.randrange(i))  # random tree
            u1, v1, d1 = random_longest_bfs_path(g, rng=rng, start=0)
            u2, v2, d2 = random_longest_bfs_path(g, rng=rng, start=0, double_sweep=True)
            assert d2 >= d1

    def test_empty_graph_rejected(self):
        with pytest.raises(DualCutError):
            random_longest_bfs_path(Graph())

    def test_unknown_start_rejected(self):
        with pytest.raises(GraphError):
            random_longest_bfs_path(path_graph(3), start=99)

    def test_single_node(self):
        g = Graph(nodes=["only"])
        u, v, depth = random_longest_bfs_path(g)
        assert u == v == "only"
        assert depth == 0


class TestDoubleBfsCut:
    def test_path_graph_split_in_middle(self):
        g = path_graph(10)
        cut = double_bfs_cut(g, 0, 9)
        assert cut.left | cut.right == set(range(10))
        assert not (cut.left & cut.right)
        assert 0 in cut.left and 9 in cut.right
        # On a path, boundary is exactly the two meeting nodes.
        assert len(cut.boundary) == 2
        check_graph_cut(g, cut)

    def test_same_seed_rejected(self):
        with pytest.raises(DualCutError):
            double_bfs_cut(path_graph(3), 1, 1)

    def test_unknown_seed_rejected(self):
        with pytest.raises(GraphError):
            double_bfs_cut(path_graph(3), 0, 99)

    def test_boundary_symmetry(self):
        """B_L nonempty iff B_R nonempty (adjacency is mutual)."""
        rng = random.Random(5)
        for seed in range(15):
            r = random.Random(seed)
            g = Graph(nodes=range(15))
            for i in range(1, 15):
                g.add_edge(i, r.randrange(i))
            for _ in range(5):
                a, b = r.sample(range(15), 2)
                if not g.has_edge(a, b):
                    g.add_edge(a, b)
            cut = double_bfs_cut(g, 0, 14, rng=rng)
            assert bool(cut.boundary_left) == bool(cut.boundary_right)
            check_graph_cut(g, cut)

    def test_other_components_attached_without_boundary(self):
        g = path_graph(6)
        g.add_edge(10, 11)  # separate component
        g.add_vertex(20)  # isolated node
        cut = double_bfs_cut(g, 0, 5)
        assert cut.left | cut.right == set(g.nodes)
        # component nodes never become boundary
        assert 10 not in cut.boundary and 20 not in cut.boundary
        check_graph_cut(g, cut)

    def test_interior_accessors(self):
        g = path_graph(4)
        cut = double_bfs_cut(g, 0, 3)
        assert cut.interior_left == cut.left - cut.boundary_left
        assert cut.interior_right == cut.right - cut.boundary_right

    def test_unreached_component_attaches_to_smaller_left_side(self):
        """After a lopsided race, stray components land on the light side."""
        g = path_graph(2)  # seeds only: counts tie at 1-1
        # a 3-node component: tie resolves to the left (counts[0] <= counts[1])
        g.add_edge("c1", "c2")
        g.add_edge("c2", "c3")
        cut = double_bfs_cut(g, 0, 1)
        assert {"c1", "c2", "c3"} <= cut.left
        assert not {"c1", "c2", "c3"} & cut.boundary
        check_graph_cut(g, cut)

    def test_unreached_component_attaches_to_smaller_right_side(self):
        g = path_graph(2)
        g.add_edge("c1", "c2")
        g.add_edge("c2", "c3")  # attaches left, making left the heavy side
        g.add_vertex("z")  # next component must go right
        cut = double_bfs_cut(g, 0, 1)
        assert {"c1", "c2", "c3"} <= cut.left
        assert "z" in cut.right
        assert "z" not in cut.boundary
        check_graph_cut(g, cut)

    def test_components_never_contribute_boundary(self):
        """The paper's c = 0 case: unconnectedness means empty boundary."""
        g = path_graph(5)
        for k in range(4):
            g.add_edge(("x", k), ("y", k))
        cut = double_bfs_cut(g, 0, 4)
        extra = {("x", k) for k in range(4)} | {("y", k) for k in range(4)}
        assert not extra & cut.boundary
        assert cut.boundary <= set(range(5))
        check_graph_cut(g, cut)


class TestPartialBipartition:
    def test_figure1_projection(self, figure1_hypergraph):
        ig = intersection_graph(figure1_hypergraph)
        cut = double_bfs_cut(ig.graph, "A", "E")
        partial = partial_bipartition(ig, cut)
        check_partial_bipartition(ig, cut, partial)
        # every vertex accounted for exactly once
        all_sets = [partial.placed_left, partial.placed_right, partial.free]
        assert set().union(*all_sets) == set(figure1_hypergraph.vertices)

    def test_inconsistent_construction_rejected(self):
        from repro.core.dual_cut import PartialBipartition

        with pytest.raises(DualCutError):
            PartialBipartition(
                placed_left=frozenset({1}), placed_right=frozenset({1}), free=frozenset()
            )

    @settings(max_examples=40)
    @given(connected_hypergraphs())
    def test_projection_always_consistent(self, h):
        ig = intersection_graph(h)
        g = ig.graph
        rng = random.Random(0)
        u, v, _ = random_longest_bfs_path(g, rng=rng)
        if u == v:
            return
        cut = double_bfs_cut(g, u, v, rng=rng)
        check_graph_cut(g, cut)
        partial = partial_bipartition(ig, cut)
        check_partial_bipartition(ig, cut, partial)
