"""Tests for ``repro.core.digest`` — the content digest of a hypergraph.

The digest is the shared identity half of both the journal layer's
settings fingerprint and the partition service's cache key, so its two
contracts get their own suite:

* **stability** — the digest is a function of hypergraph *content*,
  never of construction order or label container types;
* **sensitivity** — any change that could change a partition result
  (weights, pins, extra vertices/edges) must change the digest.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings

import repro.core
from repro.core.digest import hypergraph_digest
from repro.core.hypergraph import Hypergraph
from repro.io.json_io import hypergraph_from_payload, hypergraph_to_payload

from tests.conftest import FIGURE4_EDGES, hypergraphs


def _figure4() -> Hypergraph:
    return Hypergraph(edges=FIGURE4_EDGES)


class TestPublicSpelling:
    def test_core_digest_is_the_callable(self):
        h = _figure4()
        assert repro.core.digest(h) == hypergraph_digest(h)

    def test_exported_from_core(self):
        assert repro.core.hypergraph_digest is hypergraph_digest
        assert "digest" in repro.core.__all__

    def test_journal_layer_uses_the_same_function(self):
        # algorithm1's journal fingerprint and the service cache key must
        # agree on what "the same hypergraph" means.
        import importlib

        # importlib dodges the package attribute, which is the
        # ``algorithm1`` *function* rebound by ``repro.core.__init__``.
        a1 = importlib.import_module("repro.core.algorithm1")
        assert a1._hypergraph_digest is hypergraph_digest

    def test_shape(self):
        digest = hypergraph_digest(_figure4())
        assert isinstance(digest, str)
        assert len(digest) == 64
        int(digest, 16)  # hex


class TestStability:
    def test_repeated_calls_agree(self):
        h = _figure4()
        assert hypergraph_digest(h) == hypergraph_digest(h)

    def test_vertex_insertion_order_is_irrelevant(self):
        a = Hypergraph()
        for v in [1, 2, 3, 4]:
            a.add_vertex(v)
        b = Hypergraph()
        for v in [4, 2, 1, 3]:
            b.add_vertex(v)
        for h in (a, b):
            h.add_edge([1, 2], name="n1")
            h.add_edge([3, 4], name="n2")
        assert hypergraph_digest(a) == hypergraph_digest(b)

    def test_edge_insertion_order_is_irrelevant(self):
        items = list(FIGURE4_EDGES.items())
        a = Hypergraph(edges=dict(items))
        shuffled = items[:]
        random.Random(7).shuffle(shuffled)
        b = Hypergraph(edges=dict(shuffled))
        assert hypergraph_digest(a) == hypergraph_digest(b)

    def test_pin_order_is_irrelevant(self):
        a = Hypergraph(vertices=range(4))
        a.add_edge([0, 1, 2], name="n")
        b = Hypergraph(vertices=range(4))
        b.add_edge([2, 0, 1], name="n")
        assert hypergraph_digest(a) == hypergraph_digest(b)

    def test_json_round_trip_preserves_digest(self):
        h = _figure4()
        h.set_vertex_weight(3, 2.5)
        clone = hypergraph_from_payload(hypergraph_to_payload(h))
        assert hypergraph_digest(clone) == hypergraph_digest(h)

    def test_tuple_labels_round_trip(self):
        h = Hypergraph()
        h.add_vertex(("chain", "m", 0))
        h.add_vertex(("chain", "m", 1))
        h.add_edge([("chain", "m", 0), ("chain", "m", 1)], name=("net", 0))
        clone = hypergraph_from_payload(hypergraph_to_payload(h))
        assert hypergraph_digest(clone) == hypergraph_digest(h)

    @settings(max_examples=30, deadline=None)
    @given(h=hypergraphs(weighted=True))
    def test_round_trip_digest_property(self, h):
        clone = hypergraph_from_payload(hypergraph_to_payload(h))
        assert hypergraph_digest(clone) == hypergraph_digest(h)


class TestSensitivity:
    def test_vertex_weight_changes_digest(self):
        a, b = _figure4(), _figure4()
        b.set_vertex_weight(5, 3.0)
        assert hypergraph_digest(a) != hypergraph_digest(b)

    def test_edge_weight_changes_digest(self):
        a = Hypergraph(vertices=range(3))
        a.add_edge([0, 1], name="n", weight=1.0)
        b = Hypergraph(vertices=range(3))
        b.add_edge([0, 1], name="n", weight=2.0)
        assert hypergraph_digest(a) != hypergraph_digest(b)

    def test_extra_vertex_changes_digest(self):
        a, b = _figure4(), _figure4()
        b.add_vertex(99)
        assert hypergraph_digest(a) != hypergraph_digest(b)

    def test_extra_edge_changes_digest(self):
        a, b = _figure4(), _figure4()
        b.add_edge([1, 9], name="extra")
        assert hypergraph_digest(a) != hypergraph_digest(b)

    def test_different_pins_change_digest(self):
        a = Hypergraph(vertices=range(4))
        a.add_edge([0, 1], name="n")
        b = Hypergraph(vertices=range(4))
        b.add_edge([0, 2], name="n")
        assert hypergraph_digest(a) != hypergraph_digest(b)

    def test_label_types_are_distinguished(self):
        # "1" (str) and 1 (int) are different modules; repr-based
        # canonicalization must not conflate them.
        a = Hypergraph(vertices=[1, 2])
        a.add_edge([1, 2], name="n")
        b = Hypergraph(vertices=["1", "2"])
        b.add_edge(["1", "2"], name="n")
        assert hypergraph_digest(a) != hypergraph_digest(b)

    @pytest.mark.parametrize("weight", [2, 2.0])
    def test_numeric_weight_value_not_type_matters(self, weight):
        # int 2 and float 2.0 repr differently; pin the current contract
        # so a silent change shows up here: digests differ across the
        # int/float boundary even at equal numeric value.
        a = Hypergraph(vertices=[0, 1])
        a.add_edge([0, 1], name="n", weight=weight)
        assert hypergraph_digest(a) == hypergraph_digest(a)
