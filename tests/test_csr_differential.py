"""Differential suite: CSR traversal paths vs the legacy set walks.

The CSR refactor's whole contract is that the vectorized paths are
element-for-element identical to the pure-python ``list[set[int]]``
walks — same BFS visit order, same farthest-node tie-breaks, same
components, same boundary extraction, same FM gains.  These tests pin
that equivalence on hypothesis-generated graphs by running both paths
on the same instance: the CSR path is forced on (the threshold is a
performance knob, not a semantics knob), the legacy path is forced off.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

import repro.baselines.cutstate as cutstate_mod
from repro.baselines.cutstate import CutState
from repro.baselines.fiduccia_mattheyses import fiduccia_mattheyses
from repro.core.boundary import boundary_graph
from repro.core.complete_cut import complete_cut
from repro.core.csr import CSRAdjacency
from repro.core.dual_cut import double_bfs_cut, random_longest_bfs_path
from repro.core.graph import Graph

from tests.conftest import hypergraphs


@st.composite
def graphs(draw, min_nodes: int = 2, max_nodes: int = 24, removals: bool = True):
    """Random graphs, optionally with removed vertices (freed slots)."""
    n = draw(st.integers(min_nodes, max_nodes))
    g = Graph(nodes=range(n))
    m = draw(st.integers(0, 3 * n))
    for _ in range(m):
        pair = draw(st.lists(st.integers(0, n - 1), min_size=2, max_size=2, unique=True))
        g.add_edge(pair[0], pair[1])
    if removals:
        for v in draw(st.lists(st.integers(0, n - 1), max_size=n // 3, unique=True)):
            if v in g and g.num_nodes > 2:
                g.remove_vertex(v)
    return g


def _force_csr(g: Graph) -> Graph:
    g._use_csr = lambda: True  # instance attribute shadows the method
    return g


def _force_legacy(g: Graph) -> Graph:
    g._use_csr = lambda: False
    return g


class TestTraversalEquivalence:
    @given(graphs())
    @settings(max_examples=60, deadline=None)
    def test_bfs_order_and_distances_identical(self, g):
        csr = CSRAdjacency.from_graph(g)
        legacy = _force_legacy(g)
        for s in list(g.node_indices()):
            order = legacy.bfs_order_from(s)
            dist = legacy.bfs_dist_view()
            legacy_dist = [dist[i] for i in order]
            c_order, c_dist = csr.bfs(s)
            assert c_order.tolist() == order
            assert [int(c_dist[i]) for i in order] == legacy_dist

    @given(graphs(), st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_bfs_farthest_tiebreak_identical(self, g, seed):
        # Both paths over the SAME graph object: a copy() would rebuild
        # the adjacency sets with a different table-growth history and
        # therefore a different (still deterministic) iteration order.
        for v in list(g.nodes):
            _force_legacy(g)
            got_legacy = g.bfs_farthest(v, random.Random(seed))
            _force_csr(g)
            got_csr = g.bfs_farthest(v, random.Random(seed))
            assert got_legacy == got_csr

    @given(graphs())
    @settings(max_examples=60, deadline=None)
    def test_components_and_levels_identical(self, g):
        _force_legacy(g)
        legacy_components = g.connected_components()
        legacy_connected = g.is_connected()
        legacy_levels = {v: g.bfs_levels(v) for v in g.nodes}
        legacy_ecc = {v: g.eccentricity(v) for v in g.nodes}
        _force_csr(g)
        assert g.connected_components() == legacy_components
        assert g.is_connected() == legacy_connected
        for v in list(g.nodes):
            assert g.bfs_levels(v) == legacy_levels[v]
            assert g.eccentricity(v) == legacy_ecc[v]


class TestCutPipelineEquivalence:
    @given(graphs(removals=False), st.integers(0, 2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_double_bfs_cut_and_boundary_identical(self, g, seed):
        rng = random.Random(seed)
        u, v, _ = random_longest_bfs_path(_force_legacy(g), rng)
        if u == v:
            return
        for mode in ("balanced", "level"):
            _force_legacy(g)
            cut_legacy = double_bfs_cut(g, u, v, random.Random(seed), mode=mode)
            b_legacy = boundary_graph(g, cut_legacy)
            _force_csr(g)
            cut_csr = double_bfs_cut(g, u, v, random.Random(seed), mode=mode)
            b_csr = boundary_graph(g, cut_csr)
            _force_csr(b_csr.graph)  # exercise the selector's CSR init too
            assert cut_legacy == cut_csr
            assert b_legacy.left == b_csr.left
            assert b_legacy.right == b_csr.right
            assert sorted(map(repr, b_legacy.graph.edges())) == sorted(
                map(repr, b_csr.graph.edges())
            )
            for node in b_legacy.graph.nodes:
                assert b_legacy.graph.node_weight(node) == b_csr.graph.node_weight(node)
            # Completion runs on identical G' with identical tie-break
            # inputs, so the full winner/loser outcome must match too.
            for variant in ("min_degree", "min_loser_weight"):
                assert complete_cut(b_legacy, variant=variant) == complete_cut(
                    b_csr, variant=variant
                )
            assert complete_cut(
                b_legacy, variant="random_min_degree", rng=random.Random(seed)
            ) == complete_cut(b_csr, variant="random_min_degree", rng=random.Random(seed))


class TestFMEquivalence:
    @given(hypergraphs(min_vertices=3, max_vertices=12), st.integers(0, 2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_all_gains_match_per_vertex_gain(self, h, seed):
        rng = random.Random(seed)
        verts = list(h.vertices)
        left = set(v for v in verts if rng.random() < 0.5)
        state = CutState(h, left)
        state._build_arrays()  # force the interned path regardless of size
        gains = state.all_gains()
        assert gains is not None
        for v in verts:
            assert gains[v] == state.gain(v)

    @given(hypergraphs(min_vertices=4, max_vertices=12), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_vectorized_cutstate_init_identical(self, h, seed):
        rng = random.Random(seed)
        left = set(v for v in h.vertices if rng.random() < 0.5)
        old = cutstate_mod.VECTORIZE_MIN_PINS
        try:
            cutstate_mod.VECTORIZE_MIN_PINS = 0
            vec = CutState(h, left)
            cutstate_mod.VECTORIZE_MIN_PINS = 10**9
            legacy = CutState(h, left)
        finally:
            cutstate_mod.VECTORIZE_MIN_PINS = old
        assert vec.pins == legacy.pins
        assert vec.cutsize == legacy.cutsize
        assert vec.weighted_cutsize == legacy.weighted_cutsize
        assert vec.side_sizes == legacy.side_sizes
        assert vec.side_weights == legacy.side_weights

    @given(hypergraphs(min_vertices=4, max_vertices=12), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_fm_run_identical_either_init_path(self, h, seed):
        old = cutstate_mod.VECTORIZE_MIN_PINS
        try:
            cutstate_mod.VECTORIZE_MIN_PINS = 0
            vec = fiduccia_mattheyses(h, seed=seed)
            cutstate_mod.VECTORIZE_MIN_PINS = 10**9
            legacy = fiduccia_mattheyses(h, seed=seed)
        finally:
            cutstate_mod.VECTORIZE_MIN_PINS = old
        assert vec.bipartition.left == legacy.bipartition.left
        assert vec.bipartition.cutsize == legacy.bipartition.cutsize
        assert vec.history == legacy.history
        assert vec.evaluations == legacy.evaluations
