"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import strategies as st

from repro.core.hypergraph import Hypergraph

# ----------------------------------------------------------------------
# Paper examples
# ----------------------------------------------------------------------

#: Figure 1: 8 modules, 5 signals A–E whose intersection graph is the
#: path A - B - C - D - E.
FIGURE1_EDGES = {
    "A": [1, 2, 3],
    "B": [3, 4],
    "C": [4, 5, 6],
    "D": [6, 7],
    "E": [7, 8],
}

#: Figure 4 / Section 2.3 worked example: 12 modules, 12 signals a–l.
FIGURE4_EDGES = {
    "a": [1, 2, 11],
    "b": [2, 4, 11],
    "c": [1, 3, 4, 12],
    "d": [2, 4, 12],
    "e": [2, 11, 12],
    "f": [1, 11, 12],
    "g": [3, 5, 6, 7],
    "h": [3, 5, 8],
    "i": [5, 8, 9, 10],
    "j": [6, 7, 9, 10],
    "k": [6, 8, 10],
    "l": [7, 9, 10],
}


@pytest.fixture
def figure1_hypergraph() -> Hypergraph:
    return Hypergraph(edges=FIGURE1_EDGES)


@pytest.fixture
def figure4_hypergraph() -> Hypergraph:
    return Hypergraph(edges=FIGURE4_EDGES)


@pytest.fixture
def small_random_hypergraph() -> Hypergraph:
    """A fixed 30-vertex random hypergraph used across behavioural tests."""
    rng = random.Random(12345)
    h = Hypergraph(vertices=range(30))
    for _ in range(55):
        size = rng.choice([2, 2, 3, 3, 4])
        h.add_edge(rng.sample(range(30), size))
    return h


@pytest.fixture
def triangle_hypergraph() -> Hypergraph:
    """Three 2-pin nets forming a triangle — smallest non-trivial case."""
    return Hypergraph(edges={"ab": ["a", "b"], "bc": ["b", "c"], "ca": ["c", "a"]})


# ----------------------------------------------------------------------
# Hypothesis strategies
# ----------------------------------------------------------------------


@st.composite
def hypergraphs(
    draw,
    min_vertices: int = 2,
    max_vertices: int = 14,
    min_edges: int = 1,
    max_edges: int = 20,
    max_edge_size: int = 5,
    weighted: bool = False,
):
    """Random small hypergraphs with every vertex 0-indexed.

    Isolated vertices are allowed (vertices need not appear in edges),
    matching real netlists with unconnected modules.
    """
    n = draw(st.integers(min_vertices, max_vertices))
    m = draw(st.integers(min_edges, max_edges))
    h = Hypergraph(vertices=range(n))
    for _ in range(m):
        size = draw(st.integers(2, min(max_edge_size, n)))
        pins = draw(
            st.lists(st.integers(0, n - 1), min_size=size, max_size=size, unique=True)
        )
        h.add_edge(pins)
    if weighted:
        for v in h.vertices:
            h.set_vertex_weight(v, draw(st.floats(0.5, 4.0, allow_nan=False)))
    return h


@st.composite
def connected_hypergraphs(draw, min_vertices: int = 3, max_vertices: int = 12):
    """Hypergraphs guaranteed connected via a vertex chain of 2-pin nets."""
    n = draw(st.integers(min_vertices, max_vertices))
    h = Hypergraph(vertices=range(n))
    for i in range(n - 1):
        h.add_edge([i, i + 1])
    extra = draw(st.integers(0, 10))
    for _ in range(extra):
        size = draw(st.integers(2, min(4, n)))
        pins = draw(
            st.lists(st.integers(0, n - 1), min_size=size, max_size=size, unique=True)
        )
        h.add_edge(pins)
    return h


@st.composite
def bipartite_graphs(draw, max_side: int = 7):
    """Random bipartite graphs as (left labels, right labels, edge pairs)."""
    nl = draw(st.integers(1, max_side))
    nr = draw(st.integers(1, max_side))
    left = [("L", i) for i in range(nl)]
    right = [("R", i) for i in range(nr)]
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, nl - 1), st.integers(0, nr - 1)),
            min_size=0,
            max_size=nl * nr,
            unique=True,
        )
    )
    return left, right, [(left[i], right[j]) for i, j in edges]
