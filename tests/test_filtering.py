"""Tests for large-edge filtering (Section 3)."""

import pytest

from repro.core.filtering import DEFAULT_EDGE_SIZE_THRESHOLD, filter_large_edges
from repro.core.hypergraph import Hypergraph


@pytest.fixture
def mixed():
    h = Hypergraph(
        edges={
            "tiny": [1, 2],
            "small": [1, 2, 3],
            "medium": list(range(8)),
            "bus": list(range(15)),
            "power": list(range(30)),
        }
    )
    return h


class TestFilter:
    def test_default_threshold_is_ten(self):
        assert DEFAULT_EDGE_SIZE_THRESHOLD == 10

    def test_drops_only_large(self, mixed):
        filtered, ignored = filter_large_edges(mixed, 10)
        assert ignored == frozenset({"bus", "power"})
        assert set(filtered.edge_names) == {"tiny", "small", "medium"}

    def test_threshold_inclusive(self, mixed):
        filtered, ignored = filter_large_edges(mixed, 8)
        assert "medium" in ignored  # size 8 >= 8

    def test_vertices_survive(self, mixed):
        filtered, _ = filter_large_edges(mixed, 3)
        assert filtered.num_vertices == mixed.num_vertices

    def test_no_op_returns_same_object(self, mixed):
        filtered, ignored = filter_large_edges(mixed, 100)
        assert ignored == frozenset()
        assert filtered is mixed  # no copy when nothing drops

    def test_weights_preserved(self):
        h = Hypergraph()
        h.add_edge([1, 2], name="keep", weight=3.0)
        h.add_edge(range(20), name="drop")
        h.set_vertex_weight(1, 7.0)
        filtered, _ = filter_large_edges(h, 10)
        assert filtered.edge_weight("keep") == 3.0
        assert filtered.vertex_weight(1) == 7.0

    def test_threshold_below_two_rejected(self, mixed):
        with pytest.raises(ValueError):
            filter_large_edges(mixed, 1)

    def test_filtered_edges_still_count_in_final_cutsize(self, mixed):
        """Algorithm I evaluates against the original hypergraph."""
        from repro.core.algorithm1 import algorithm1

        result = algorithm1(mixed, seed=0, edge_size_threshold=10)
        assert result.ignored_edges == frozenset({"bus", "power"})
        # result's bipartition is over the original: crossing checks work
        # for ignored edges too.
        bp = result.bipartition
        for name in result.ignored_edges:
            bp.edge_crosses(name)  # must not raise
