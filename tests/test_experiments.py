"""Tests for the experiment harness (tiny parameters; shape checks only)."""

import math

import pytest

from repro.experiments import (
    format_table,
    run_boundary_experiment,
    run_crossing_experiment,
    run_diameter_experiment,
    run_scaling_experiment,
    run_variance_study,
    run_completion_variant_ablation,
    run_difficult_sweep,
    run_filtering_ablation,
    run_granularization_study,
    run_multistart_ablation,
    run_quotient_cut_study,
    run_refinement_ablation,
    run_table1,
    run_table2,
    run_weighted_balance_ablation,
)


class TestFormatTable:
    def test_basic(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": float("nan")}]
        text = format_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert "2.500" in text
        assert "-" in lines[-1]  # NaN renders as dash

    def test_empty(self):
        assert "(no rows)" in format_table([])

    def test_column_selection(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_precision(self):
        text = format_table([{"x": 1.23456}], precision=1)
        assert "1.2" in text and "1.23" not in text


class TestTable1:
    def test_shape(self):
        rows = run_table1(num_modules=60, num_signals=120, runs=2, technologies=("pcb",), seed=0)
        assert len(rows) == 1
        row = rows[0]
        assert row["technology"] == "pcb"
        for k in (20, 14, 8):
            value = row[f"crossing_k{k}"]
            assert math.isnan(value) or 0 <= value <= 1

    def test_large_signals_mostly_cross(self):
        rows = run_table1(num_modules=80, num_signals=160, runs=3, technologies=("pcb",), seed=1)
        value = rows[0]["crossing_k14"]
        if not math.isnan(value):
            assert value >= 0.5

    def test_unknown_technology(self):
        with pytest.raises(ValueError):
            run_table1(technologies=("quantum",))


class TestTable2:
    def test_shape_and_ratio_rows(self):
        rows = run_table2(instances=("Bd1",), alg1_starts=5, seed=0)
        assert len(rows) == 3
        assert rows[0]["instance"] == "Bd1"
        assert rows[-2]["instance"] == "CPU-ratio-total"
        assert rows[-1]["instance"] == "CPU-ratio-per-start"
        assert rows[0]["alg1_cut"] >= 0
        assert rows[-1]["sa_norm"] >= rows[-2]["sa_norm"]

    def test_diff_row_has_optimum(self):
        rows = run_table2(instances=("Diff1",), alg1_starts=10, seed=0)
        assert rows[0]["optimum"] == 2
        assert rows[0]["alg1_cut"] <= 3 * rows[0]["optimum"] + 2

    def test_unknown_instance(self):
        with pytest.raises(ValueError):
            run_table2(instances=("Bd99",))


class TestDifficultSweep:
    def test_c_zero_alg1_always_wins(self):
        rows = run_difficult_sweep(
            num_vertices=60,
            num_edges=90,
            planted_cutsizes=(0,),
            trials=3,
            alg1_starts=5,
            seed=0,
        )
        assert rows[0]["alg1_hit_rate"] == 1.0
        assert rows[0]["alg1_mean_cut"] == 0.0

    def test_random_never_competitive(self):
        rows = run_difficult_sweep(
            num_vertices=60,
            num_edges=90,
            planted_cutsizes=(1,),
            trials=3,
            alg1_starts=5,
            seed=0,
        )
        assert rows[0]["random_mean_cut"] > rows[0]["alg1_mean_cut"]


class TestAblations:
    def test_multistart_monotone_best(self):
        rows = run_multistart_ablation(start_counts=(1, 10), trials=2, seed=0)
        assert rows[0]["num_starts"] == 1
        assert rows[1]["best_cut"] <= rows[0]["worst_cut"]

    def test_filtering_rows(self):
        rows = run_filtering_ablation(thresholds=(None, 10), trials=1, seed=0)
        assert rows[0]["threshold"] == "off"
        assert rows[0]["ignored_edges"] == 0
        assert rows[1]["ignored_edges"] >= 0
        assert rows[1]["dual_nodes"] <= rows[0]["dual_nodes"]

    def test_variant_rows(self):
        rows = run_completion_variant_ablation(trials=1, num_starts=5, seed=0)
        assert {r["variant"] for r in rows} == {
            "min_degree",
            "random_min_degree",
            "min_loser_weight",
        }

    def test_weighted_balance_tradeoff(self):
        rows = run_weighted_balance_ablation(instance="Bd1", trials=1, num_starts=5, seed=0)
        plain, weighted = rows
        assert weighted["engineers_rule"] is True
        assert weighted["mean_weight_imbalance"] <= plain["mean_weight_imbalance"] + 0.25

    def test_refinement_never_worse(self):
        rows = run_refinement_ablation(instance="Bd1", trials=1, num_starts=5, seed=0)
        raw, refined = rows
        assert refined["mean_cut"] <= raw["mean_cut"]

    def test_quotient_study_rows(self):
        rows = run_quotient_cut_study(trials=1, num_starts=5, seed=0)
        assert len(rows) == 3
        for row in rows:
            assert row["mean_quotient_cut"] >= 0

    def test_granularization_rows(self):
        rows = run_granularization_study(
            num_modules=40, num_signals=70, trials=1, num_starts=5, seed=0
        )
        assert [r["pipeline"] for r in rows] == ["direct", "granularized"]
        for row in rows:
            assert 0 <= row["mean_weight_imbalance"] <= 1


class TestVarianceStudy:
    def test_rows_shape(self):
        rows = run_variance_study(instance="Bd1", runs=3, seed=0)
        methods = {row["method"] for row in rows}
        assert methods == {"alg1_x1", "alg1_x50", "kl", "fm", "sa"}
        for row in rows:
            assert row["min_cut"] <= row["mean_cut"] <= row["max_cut"]
            assert row["std_cut"] >= 0
            assert row["runs"] == 3

    def test_multistart_tightens(self):
        rows = run_variance_study(instance="Bd1", runs=4, seed=1)
        by = {row["method"]: row for row in rows}
        assert by["alg1_x50"]["mean_cut"] <= by["alg1_x1"]["mean_cut"]


class TestTheoremExperiments:
    def test_diameter_rows(self):
        rows = run_diameter_experiment(sizes=(30, 60), trials=2, seed=0)
        assert len(rows) == 2
        for row in rows:
            assert row["mean_bfs_depth"] <= row["mean_diameter"]
            assert row["mean_gap"] >= 0

    def test_boundary_rows(self):
        rows = run_boundary_experiment(sizes=(40,), trials=2, seed=0)
        kinds = {row["kind"] for row in rows}
        assert kinds == {"random", "netlist"}

    def test_crossing_rows(self):
        rows = run_crossing_experiment(probe_sizes=(2, 8), trials=1, seed=0)
        assert [row["edge_size"] for row in rows] == [2, 8]
        for row in rows:
            assert 0 <= row["predicted_1_minus_2^(1-k)"] <= 1

    def test_scaling_rows_have_exponent_summary(self):
        rows = run_scaling_experiment(sizes=(30, 60), seed=0)
        assert rows[-1]["n_modules"] == "exponent"
        assert len(rows) == 3
