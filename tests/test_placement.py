"""Tests for the min-cut placement application."""

import random

import pytest

from repro.core.hypergraph import Hypergraph
from repro.generators.netlists import clustered_netlist
from repro.placement import GridRegion, PlacementResult, SlotGrid, hpwl, mincut_place, net_hpwl
from repro.placement.mincut_placement import PlacementError, _default_grid


@pytest.fixture
def netlist():
    h = clustered_netlist(30, 55, "std_cell", seed=9)
    for v in h.vertices:
        h.set_vertex_weight(v, 1.0)
    return h


class TestWirelength:
    def test_net_hpwl(self):
        h = Hypergraph(edges={"n": [1, 2, 3]})
        positions = {1: (0.0, 0.0), 2: (3.0, 1.0), 3: (1.0, 4.0)}
        assert net_hpwl(h, "n", positions) == 3.0 + 4.0

    def test_total_weighted(self):
        h = Hypergraph()
        h.add_edge([1, 2], name="a", weight=2.0)
        h.add_edge([2, 3], name="b")
        positions = {1: (0, 0), 2: (1, 0), 3: (1, 2)}
        assert hpwl(h, positions) == 2.0 * 1 + 1 * 2

    def test_unplaced_pin_raises(self):
        h = Hypergraph(edges={"n": [1, 2]})
        with pytest.raises(KeyError):
            net_hpwl(h, "n", {1: (0, 0)})

    def test_single_pin_net_zero(self):
        h = Hypergraph(edges={"n": [1]})
        assert net_hpwl(h, "n", {1: (5, 5)}) == 0.0


class TestGrid:
    def test_region_properties(self):
        r = GridRegion(0, 2, 0, 3)
        assert r.height == 2
        assert r.width == 3
        assert r.capacity == 6
        assert len(r.slots()) == 6
        assert r.center == (1.0, 0.5)

    def test_empty_region_rejected(self):
        with pytest.raises(ValueError):
            GridRegion(0, 0, 0, 3)

    def test_split_wide_region_vertical(self):
        first, second, axis = GridRegion(0, 2, 0, 4).split()
        assert axis == "vertical"
        assert first.capacity + second.capacity == 8
        assert first.col1 == second.col0

    def test_split_tall_region_horizontal(self):
        first, second, axis = GridRegion(0, 4, 0, 2).split()
        assert axis == "horizontal"
        assert first.row1 == second.row0

    def test_split_odd_sizes(self):
        first, second, _ = GridRegion(0, 1, 0, 5).split()
        assert first.capacity == 3 and second.capacity == 2

    def test_unit_region_cannot_split(self):
        with pytest.raises(ValueError):
            GridRegion(0, 1, 0, 1).split()

    def test_slot_grid(self):
        g = SlotGrid(3, 4)
        assert g.capacity == 12
        assert g.full_region().capacity == 12
        with pytest.raises(ValueError):
            SlotGrid(0, 4)

    def test_default_grid(self):
        g = _default_grid(10)
        assert g.capacity >= 10
        assert g.capacity <= 16  # near-square, not wasteful
        assert _default_grid(1).capacity >= 1


class TestPlacement:
    @pytest.mark.parametrize("partitioner", ["algorithm1", "fm", "hybrid"])
    def test_valid_placement(self, netlist, partitioner):
        result = mincut_place(netlist, SlotGrid(6, 6), partitioner=partitioner, seed=0)
        assert len(result.positions) == 30
        slots = list(result.positions.values())
        assert len(set(slots)) == 30  # one module per slot
        for r, c in slots:
            assert 0 <= r < 6 and 0 <= c < 6

    def test_default_grid_fits(self, netlist):
        result = mincut_place(netlist, seed=0)
        assert result.grid.capacity >= 30

    def test_too_many_modules_rejected(self, netlist):
        with pytest.raises(PlacementError):
            mincut_place(netlist, SlotGrid(5, 5))

    def test_unknown_partitioner(self, netlist):
        with pytest.raises(PlacementError):
            mincut_place(netlist, partitioner="magic")

    def test_better_than_random(self, netlist):
        result = mincut_place(netlist, SlotGrid(6, 6), seed=0)
        rng = random.Random(0)
        slots = SlotGrid(6, 6).full_region().slots()
        rng.shuffle(slots)
        random_positions = {
            v: (float(c), float(r))
            for v, (r, c) in zip(netlist.vertices, slots)
        }
        assert result.total_hpwl < hpwl(netlist, random_positions)

    def test_cuts_invariant(self, netlist):
        """Full recursive bisection cuts every k-pin net exactly k-1 times."""
        result = mincut_place(netlist, SlotGrid(6, 6), seed=0)
        expected = netlist.num_pins - netlist.num_edges
        assert result.total_cuts == expected

    def test_terminal_propagation_toggles(self, netlist):
        with_tp = mincut_place(netlist, SlotGrid(6, 6), seed=0, terminal_propagation=True)
        without_tp = mincut_place(netlist, SlotGrid(6, 6), seed=0, terminal_propagation=False)
        assert len(with_tp.positions) == len(without_tp.positions) == 30
        # TP usually helps; never catastrophically hurts.
        assert with_tp.total_hpwl <= without_tp.total_hpwl * 1.5

    def test_deterministic(self, netlist):
        a = mincut_place(netlist, SlotGrid(6, 6), seed=5)
        b = mincut_place(netlist, SlotGrid(6, 6), seed=5)
        assert a.positions == b.positions

    def test_result_type(self, netlist):
        result = mincut_place(netlist, SlotGrid(6, 6), seed=0)
        assert isinstance(result, PlacementResult)
        assert result.hypergraph is netlist
        assert result.total_hpwl > 0

    def test_exact_capacity(self):
        """Modules exactly fill the grid."""
        h = clustered_netlist(16, 30, "std_cell", seed=2)
        for v in h.vertices:
            h.set_vertex_weight(v, 1.0)
        result = mincut_place(h, SlotGrid(4, 4), seed=0)
        assert len(set(result.positions.values())) == 16

    def test_tiny_netlist(self):
        h = Hypergraph(edges={"n": ["a", "b"]})
        result = mincut_place(h, SlotGrid(1, 2), seed=0)
        assert len(result.positions) == 2

    def test_weighted_modules_still_place(self):
        h = clustered_netlist(20, 40, "std_cell", seed=4)  # weighted profile
        result = mincut_place(h, SlotGrid(5, 4), seed=0)
        assert len(result.positions) == 20


class TestMincutDeadline:
    def test_zero_deadline_degrades_but_fills_every_slot(self, netlist):
        result = mincut_place(netlist, SlotGrid(6, 6), seed=0, deadline=0.0)
        assert set(result.positions) == set(netlist.vertices)
        assert len(set(result.positions.values())) == netlist.num_vertices
        assert result.degraded is True
        assert "deadline" in result.degrade_reason

    def test_generous_deadline_matches_unconstrained(self, netlist):
        bounded = mincut_place(netlist, SlotGrid(6, 6), seed=0, deadline=600.0)
        free = mincut_place(netlist, SlotGrid(6, 6), seed=0)
        assert bounded.degraded is False
        assert bounded.degrade_reason is None
        assert bounded.positions == free.positions
        assert bounded.cut_sizes == free.cut_sizes
