"""Exact-oracle differential suite for the flow engine.

Two independent oracles pin the flow stack to ground truth:

1. ``branch_and_bound_min_cut`` (``core/exact.py``) — exact *unweighted*
   global min cut.  On every hypothesis hypergraph up to 12 modules the
   flow global min cut (minimum over sink choices of an s-t corridor
   solve) must match it bit for bit, and the returned bipartition must
   realize that value.
2. Exhaustive enumeration — weighted, with fixed sides.  On seeded
   random instances ``solve_corridor`` must equal the brute-force
   optimum over all 2^|free| corridor assignments exactly (all weights
   are multiples of 0.5, so float sums are exact and ``==`` is fair).

Plus the refinement contract: ``refine_flow`` never increases the cut
and never violates the balance bound — on generated instances, after
each production engine on the pinned bench suite, and through the bench
``--compare`` equal-or-better gate.
"""

from __future__ import annotations

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import PINNED_SUITE, compare_bench, run_bench
from repro.core.exact import branch_and_bound_min_cut
from repro.core.hypergraph import Hypergraph
from repro.core.partition import Bipartition
from repro.engines import run_engine
from repro.flow import refine_flow, solve_corridor
from tests.conftest import hypergraphs

#: Seeded-instance count, matching tests/test_differential_oracle.py.
NUM_SEEDS = 24

_EPS = 1e-9


def _flow_global_min_cut(h: Hypergraph):
    """Global min cut via flow: fix the first module, sweep all sinks.

    Any global minimum cut separates ``s`` from *some* other module, so
    the minimum over sinks of the s-t corridor solve is the global
    optimum.  This is the textbook reduction the oracle relies on.
    """
    verts = list(h.vertices)
    s = verts[0]
    best = None
    for t in verts[1:]:
        free = [v for v in verts if v != s and v != t]
        sol = solve_corridor(h, [s], [t], free)
        if best is None or sol.cut_weight < best.cut_weight:
            best = sol
    return best


def _random_weighted_instance(seed: int) -> Hypergraph:
    """Weighted random instance; every weight is a multiple of 0.5 so
    all flow arithmetic is exact in binary floating point."""
    rng = random.Random(seed)
    n = rng.randint(4, 10)
    h = Hypergraph(vertices=range(n))
    for v in range(n):
        h.set_vertex_weight(v, rng.choice([0.5, 1.0, 1.5, 2.0, 3.0]))
    for _ in range(rng.randint(n - 1, 2 * n)):
        size = rng.randint(2, min(4, n))
        h.add_edge(rng.sample(range(n), size), weight=rng.choice([0.5, 1.0, 2.0, 2.5, 4.0]))
    return h


def _brute_force_corridor(h, fixed_left, fixed_right, free) -> float:
    free = list(free)
    best = None
    for bits in itertools.product((0, 1), repeat=len(free)):
        left = set(fixed_left) | {v for v, b in zip(free, bits) if not b}
        right = set(fixed_right) | {v for v, b in zip(free, bits) if b}
        cut = Bipartition(h, left, right).weighted_cutsize
        if best is None or cut < best:
            best = cut
    return best


class TestGlobalMinCutOracle:
    """Flow vs branch and bound on every instance up to 12 modules."""

    @given(hypergraphs(min_vertices=2, max_vertices=12))
    @settings(max_examples=60, deadline=None)
    def test_flow_matches_branch_and_bound_bit_for_bit(self, h):
        exact = branch_and_bound_min_cut(h)
        sol = _flow_global_min_cut(h)
        # Unit weights: the max flow is integral, so == is bit-for-bit.
        assert sol.cut_weight == exact.cutsize
        realized = Bipartition(h, sol.left, sol.right)
        assert realized.cutsize == exact.cutsize
        assert realized.weighted_cutsize == sol.cut_weight

    @given(hypergraphs(min_vertices=2, max_vertices=12))
    @settings(max_examples=40, deadline=None)
    def test_flow_engine_never_beats_the_exact_optimum(self, h):
        """Sanity on the full engine: ``flow`` can never return a cut
        below the unconstrained exact minimum (that would mean the
        transform dropped an edge)."""
        exact = branch_and_bound_min_cut(h)
        bp, extras = run_engine("flow", h, seed=0, starts=4)
        assert bp.cutsize >= exact.cutsize
        assert not extras.get("degraded")


class TestCorridorOracleWeighted:
    """``solve_corridor`` vs exhaustive enumeration, weighted."""

    @pytest.mark.parametrize("seed", range(NUM_SEEDS))
    def test_solve_corridor_matches_exhaustive_enumeration(self, seed):
        h = _random_weighted_instance(seed)
        rng = random.Random(seed + 1000)
        verts = list(h.vertices)
        rng.shuffle(verts)
        a, b = rng.randint(1, 2), rng.randint(1, 2)
        fixed_left, fixed_right = verts[:a], verts[a : a + b]
        free = verts[a + b :]

        sol = solve_corridor(h, fixed_left, fixed_right, free)
        best = _brute_force_corridor(h, fixed_left, fixed_right, free)
        assert sol.cut_weight == best
        realized = Bipartition(h, sol.left, sol.right)
        assert realized.weighted_cutsize == best
        assert set(fixed_left) <= set(sol.left)
        assert set(fixed_right) <= set(sol.right)
        assert set(sol.left) | set(sol.right) == set(h.vertices)
        assert not set(sol.left) & set(sol.right)

    @pytest.mark.parametrize("seed", range(NUM_SEEDS))
    def test_cut_weight_decomposes_into_flow_plus_base(self, seed):
        """The reported optimum is exactly max-flow + fixed-fixed cut."""
        h = _random_weighted_instance(seed)
        verts = list(h.vertices)
        sol = solve_corridor(h, [verts[0]], [verts[-1]], verts[1:-1])
        assert sol.cut_weight == sol.flow_value + sol.base_cut_weight
        assert sol.flow_value >= 0.0
        assert sol.base_cut_weight >= 0.0


class TestRefineContract:
    """``refine_flow`` never worsens the cut, never breaks balance."""

    @given(hypergraphs(min_vertices=2, max_vertices=12), st.data())
    @settings(max_examples=60, deadline=None)
    def test_never_increases_cut_never_violates_balance(self, h, data):
        n = h.num_vertices
        mask = data.draw(st.integers(1, 2**n - 2), label="partition mask")
        left = {v for i, v in enumerate(h.vertices) if (mask >> i) & 1}
        right = set(h.vertices) - left
        part = Bipartition(h, left, right)
        tol = data.draw(st.sampled_from([0.0, 0.1, 0.3, 1.0]), label="tolerance")
        radius = data.draw(st.integers(0, 3), label="corridor radius")

        res = refine_flow(h, part, corridor_radius=radius, balance_tolerance=tol)
        bound = max(tol, part.weight_imbalance_fraction)
        assert res.bipartition.cutsize <= part.cutsize
        assert res.bipartition.weight_imbalance_fraction <= bound + _EPS
        assert res.improved == (res.bipartition.cutsize < part.cutsize)
        assert not res.degraded

    @pytest.mark.parametrize("seed", range(NUM_SEEDS))
    def test_weighted_instances_contract(self, seed):
        h = _random_weighted_instance(seed)
        rng = random.Random(seed * 7 + 3)
        verts = list(h.vertices)
        k = rng.randint(1, len(verts) - 1)
        part = Bipartition(h, verts[:k], verts[k:])

        res = refine_flow(h, part, corridor_radius=2, balance_tolerance=0.1)
        assert res.bipartition.weighted_cutsize <= part.weighted_cutsize + _EPS
        bound = max(0.1, part.weight_imbalance_fraction)
        assert res.bipartition.weight_imbalance_fraction <= bound + _EPS
        # Trajectory: the input cut plus one entry per accepted round.
        assert len(res.cut_trajectory) == res.accepted_rounds + 1
        assert all(
            later <= earlier + _EPS
            for earlier, later in zip(res.cut_trajectory, res.cut_trajectory[1:])
        )


class TestPinnedSuiteRefinement:
    """On the pinned bench instances, flow refinement after each
    production engine is equal-or-better — the PR's acceptance gate."""

    @pytest.mark.parametrize("engine", ["algorithm1", "fm", "sa"])
    def test_refine_after_engine_never_worsens(self, engine):
        for case in PINNED_SUITE:
            h, _meta = case.materialize()
            bp, _ = run_engine(engine, h, seed=7, starts=3)
            res = refine_flow(h, bp, corridor_radius=2, balance_tolerance=0.1)
            assert res.bipartition.cutsize <= bp.cutsize, (case.name, engine)
            bound = max(0.1, bp.weight_imbalance_fraction)
            assert res.bipartition.weight_imbalance_fraction <= bound + _EPS

    def test_bench_compare_gate_is_equal_or_better(self, tmp_path):
        """``run_bench(refine='flow')`` vs the unrefined baseline must
        show no cut or coverage regressions under ``compare_bench`` —
        the machine-checkable form of the equal-or-better promise."""
        engines = ("algorithm1", "fm", "sa")
        baseline = run_bench("baseline", engines=engines, starts=3, repeats=1)
        refined = run_bench("refined", engines=engines, starts=3, repeats=1, refine="flow")
        assert refined["settings"]["refine"] == "flow"
        regressions = compare_bench(baseline, refined, runtime_tolerance=1000.0)
        bad = [r for r in regressions if r.kind in ("cut", "coverage")]
        assert bad == [], bad
