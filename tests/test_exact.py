"""Tests for the branch-and-bound exact min-cut solver."""

import random

import pytest
from hypothesis import given, settings

from repro.core.exact import ExactSolverError, branch_and_bound_min_cut
from repro.core.hypergraph import Hypergraph
from repro.core.validation import brute_force_min_cut
from repro.generators.difficult import planted_bisection
from tests.conftest import hypergraphs


class TestAgainstBruteForce:
    @settings(max_examples=30, deadline=None)
    @given(hypergraphs(max_vertices=9, max_edges=12))
    def test_unconstrained_matches(self, h):
        bnb = branch_and_bound_min_cut(h)
        exhaustive = brute_force_min_cut(h)
        assert bnb.cutsize == exhaustive.cutsize

    @settings(max_examples=20, deadline=None)
    @given(hypergraphs(min_vertices=4, max_vertices=9, max_edges=12))
    def test_bisection_matches(self, h):
        bnb = branch_and_bound_min_cut(h, require_bisection=True)
        exhaustive = brute_force_min_cut(h, require_bisection=True)
        assert bnb.cutsize == exhaustive.cutsize
        assert bnb.is_bisection()

    @settings(max_examples=15, deadline=None)
    @given(hypergraphs(min_vertices=5, max_vertices=9, max_edges=10))
    def test_imbalance_constraint_matches(self, h):
        bnb = branch_and_bound_min_cut(h, max_imbalance=2)
        exhaustive = brute_force_min_cut(h, max_imbalance=2)
        assert bnb.cutsize == exhaustive.cutsize
        assert bnb.cardinality_imbalance <= 2


class TestScaling:
    def test_solves_beyond_brute_force_limit(self):
        """24 vertices — past the exhaustive oracle's ceiling."""
        inst = planted_bisection(24, 40, crossing_edges=2, seed=3)
        result = branch_and_bound_min_cut(inst.hypergraph, require_bisection=True)
        assert result.cutsize == 2

    def test_finds_planted_optimum(self):
        inst = planted_bisection(20, 34, crossing_edges=1, seed=1)
        result = branch_and_bound_min_cut(inst.hypergraph, require_bisection=True)
        assert result.cutsize == 1
        assert result == inst.planted or result.cutsize == inst.planted.cutsize

    def test_node_limit_enforced(self):
        rng = random.Random(0)
        h = Hypergraph(vertices=range(26))
        for _ in range(60):
            h.add_edge(rng.sample(range(26), 3))
        with pytest.raises(ExactSolverError):
            branch_and_bound_min_cut(h, node_limit=50)


class TestValidation:
    def test_too_small(self):
        with pytest.raises(ExactSolverError):
            branch_and_bound_min_cut(Hypergraph(vertices=[1]))

    def test_too_large(self):
        with pytest.raises(ExactSolverError):
            branch_and_bound_min_cut(Hypergraph(vertices=range(40)))

    def test_conflicting_constraints(self):
        h = Hypergraph(vertices=range(4))
        with pytest.raises(ExactSolverError):
            branch_and_bound_min_cut(h, require_bisection=True, max_imbalance=2)

    def test_negative_imbalance(self):
        h = Hypergraph(vertices=range(4))
        with pytest.raises(ExactSolverError):
            branch_and_bound_min_cut(h, max_imbalance=-1)

    def test_edgeless(self):
        h = Hypergraph(vertices=range(6))
        result = branch_and_bound_min_cut(h, require_bisection=True)
        assert result.cutsize == 0
        assert result.is_bisection()

    def test_two_vertices(self):
        h = Hypergraph(edges={"n": [1, 2]})
        result = branch_and_bound_min_cut(h)
        assert result.cutsize == 1
