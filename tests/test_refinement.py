"""Tests for FM post-refinement of Algorithm I cuts."""

import random

from repro.core.algorithm1 import algorithm1
from repro.core.hypergraph import Hypergraph
from repro.core.refinement import fm_refine
from repro.core.validation import check_bipartition


def messy_hypergraph(seed: int = 0, n: int = 40, m: int = 75) -> Hypergraph:
    rng = random.Random(seed)
    h = Hypergraph(vertices=range(n))
    for _ in range(m):
        h.add_edge(rng.sample(range(n), rng.choice([2, 3, 3, 4])))
    return h


class TestFmRefine:
    def test_never_worse(self):
        h = messy_hypergraph()
        start = algorithm1(h, num_starts=3, seed=0).bipartition
        refined = fm_refine(start, seed=0)
        assert refined.cutsize <= start.cutsize
        check_bipartition(refined)

    def test_usually_improves_unpolished_cut(self):
        """Single-start Algorithm I on an unstructured hypergraph leaves
        slack that FM reclaims."""
        improvements = 0
        for seed in range(5):
            h = messy_hypergraph(seed)
            start = algorithm1(h, num_starts=1, seed=seed, weighted_balance=True).bipartition
            refined = fm_refine(start, seed=seed)
            if refined.cutsize < start.cutsize:
                improvements += 1
        assert improvements >= 2

    def test_preserves_vertex_set(self):
        h = messy_hypergraph(3)
        start = algorithm1(h, seed=0).bipartition
        refined = fm_refine(start)
        assert refined.left | refined.right == set(h.vertices)

    def test_idempotent_on_optimum(self):
        """Refining a 0-cut partition changes nothing."""
        h = Hypergraph(edges={"a": [1, 2], "b": [3, 4]})
        start = algorithm1(h, seed=0).bipartition
        assert start.cutsize == 0
        assert fm_refine(start).cutsize == 0

    def test_max_passes_zero_is_noop(self):
        h = messy_hypergraph(4)
        start = algorithm1(h, seed=0).bipartition
        refined = fm_refine(start, max_passes=0)
        assert refined.cutsize == start.cutsize
