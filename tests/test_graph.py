"""Unit tests for the plain Graph structure and its traversals."""

import random

import pytest

from repro.core.graph import Graph, GraphError


def path_graph(n: int) -> Graph:
    return Graph(nodes=range(n), edges=[(i, i + 1) for i in range(n - 1)])


def cycle_graph(n: int) -> Graph:
    g = path_graph(n)
    g.add_edge(n - 1, 0)
    return g


class TestConstruction:
    def test_empty(self):
        g = Graph()
        assert g.num_nodes == 0
        assert g.num_edges == 0

    def test_nodes_and_edges(self):
        g = Graph(nodes=[1, 2, 3], edges=[(1, 2)])
        assert g.num_nodes == 3
        assert g.num_edges == 1
        assert g.has_edge(2, 1)

    def test_weighted_nodes_mapping(self):
        g = Graph(nodes={"a": 2.0, "b": 3.0})
        assert g.node_weight("a") == 2.0

    def test_add_edge_creates_nodes(self):
        g = Graph()
        g.add_edge("x", "y")
        assert "x" in g and "y" in g

    def test_parallel_edges_collapse(self):
        g = Graph(edges=[(1, 2), (1, 2), (2, 1)])
        assert g.num_edges == 1

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            Graph().add_edge(1, 1)

    def test_copy_independent(self):
        g = path_graph(4)
        c = g.copy()
        c.add_edge(0, 3)
        assert not g.has_edge(0, 3)


class TestErrors:
    def test_unknown_node_queries(self):
        g = path_graph(3)
        for fn in (g.neighbors, g.degree, g.node_weight, g.bfs_levels, g.remove_vertex):
            with pytest.raises(GraphError):
                fn(99)

    def test_remove_missing_edge(self):
        g = path_graph(3)
        with pytest.raises(GraphError):
            g.remove_edge(0, 2)

    def test_induced_unknown(self):
        with pytest.raises(GraphError):
            path_graph(3).induced([0, 99])

    def test_diameter_disconnected(self):
        g = Graph(nodes=[1, 2])
        with pytest.raises(GraphError):
            g.diameter()

    def test_diameter_empty(self):
        with pytest.raises(GraphError):
            Graph().diameter()

    def test_min_degree_no_candidates(self):
        with pytest.raises(GraphError):
            Graph().min_degree_node()


class TestMutation:
    def test_remove_vertex_removes_incident_edges(self):
        g = path_graph(3)
        g.remove_vertex(1)
        assert g.num_edges == 0
        assert g.num_nodes == 2

    def test_remove_edge(self):
        g = path_graph(3)
        g.remove_edge(0, 1)
        assert not g.has_edge(0, 1)
        assert g.num_edges == 1


class TestTraversal:
    def test_bfs_levels_path(self):
        g = path_graph(5)
        assert g.bfs_levels(0) == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_bfs_levels_partial_on_disconnected(self):
        g = Graph(nodes=[1, 2, 3], edges=[(1, 2)])
        assert set(g.bfs_levels(1)) == {1, 2}

    def test_bfs_farthest(self):
        g = path_graph(6)
        far, depth = g.bfs_farthest(0)
        assert far == 5
        assert depth == 5

    def test_bfs_farthest_random_tiebreak(self):
        # star: all leaves at distance 1 — random rng must pick one of them
        g = Graph(edges=[(0, i) for i in range(1, 6)])
        rng = random.Random(0)
        picks = {g.bfs_farthest(0, rng)[0] for _ in range(30)}
        assert len(picks) > 1  # not always the same leaf
        assert all(p != 0 for p in picks)

    def test_eccentricity_and_diameter(self):
        g = path_graph(7)
        assert g.eccentricity(3) == 3
        assert g.eccentricity(0) == 6
        assert g.diameter() == 6

    def test_cycle_diameter(self):
        assert cycle_graph(8).diameter() == 4

    def test_connected_components(self):
        g = Graph(nodes=range(5), edges=[(0, 1), (2, 3)])
        comps = sorted(g.connected_components(), key=len)
        assert [len(c) for c in comps] == [1, 2, 2]
        assert not g.is_connected()
        assert Graph().is_connected()

    def test_induced_subgraph(self):
        g = cycle_graph(6)
        sub = g.induced([0, 1, 2])
        assert sub.num_edges == 2
        assert sub.has_edge(0, 1) and sub.has_edge(1, 2)


class TestBipartite:
    def test_even_cycle_bipartite(self):
        ok, coloring = cycle_graph(6).is_bipartite()
        assert ok
        for u, v in cycle_graph(6).edges():
            assert coloring[u] != coloring[v]

    def test_odd_cycle_not_bipartite(self):
        ok, _ = cycle_graph(5).is_bipartite()
        assert not ok

    def test_disconnected_bipartite(self):
        g = Graph(nodes=range(4), edges=[(0, 1), (2, 3)])
        ok, coloring = g.is_bipartite()
        assert ok
        assert len(coloring) == 4

    def test_empty_bipartite(self):
        ok, coloring = Graph().is_bipartite()
        assert ok
        assert coloring == {}


class TestMisc:
    def test_min_degree_node(self):
        g = Graph(edges=[(0, 1), (0, 2), (1, 2), (2, 3)])
        assert g.min_degree_node() == 3

    def test_min_degree_node_candidates(self):
        g = Graph(edges=[(0, 1), (0, 2), (1, 2), (2, 3)])
        assert g.min_degree_node(candidates=[0, 1]) in (0, 1)

    def test_edges_iterator_unique(self):
        g = cycle_graph(5)
        edges = list(g.edges())
        assert len(edges) == 5
        canonical = {frozenset(e) for e in edges}
        assert len(canonical) == 5

    def test_max_degree(self):
        g = Graph(edges=[(0, i) for i in range(1, 5)])
        assert g.max_degree() == 4
        assert Graph().max_degree() == 0

    def test_to_networkx(self):
        g = path_graph(4)
        nxg = g.to_networkx()
        assert nxg.number_of_nodes() == 4
        assert nxg.number_of_edges() == 3

    def test_repr(self):
        assert "num_nodes=3" in repr(path_graph(3))


class TestIndexedCore:
    """The interned-index API backing the hot paths."""

    def test_index_label_round_trip(self):
        g = Graph(nodes=["a", "b", "c"])
        for label in g.nodes:
            assert g.label_of(g.index_of(label)) == label

    def test_unknown_label_rejected(self):
        g = Graph(nodes=["a"])
        with pytest.raises(GraphError):
            g.index_of("missing")

    def test_neighbors_view_matches_neighbors(self):
        g = cycle_graph(6)
        for node in g.nodes:
            assert set(g.neighbors_view(node)) == set(g.neighbors(node))

    def test_adjacency_view_in_index_space(self):
        g = path_graph(4)
        adj = g.adjacency_view()
        labels = g.labels_view()
        for node in g.nodes:
            i = g.index_of(node)
            assert {labels[j] for j in adj[i]} == set(g.neighbors(node))

    def test_indices_stable_across_removal(self):
        g = Graph(nodes=["a", "b", "c", "d"], edges=[("a", "b"), ("b", "c")])
        kept = {n: g.index_of(n) for n in ("a", "c", "d")}
        g.remove_vertex("b")
        for label, idx in kept.items():
            assert g.index_of(label) == idx
            assert g.label_of(idx) == label
        assert set(g.node_indices()) == set(kept.values())

    def test_slot_reuse_after_removal(self):
        g = Graph(nodes=["a", "b"])
        freed = g.index_of("b")
        g.remove_vertex("b")
        g.add_vertex("z")
        assert g.index_of("z") == freed
        assert g.slot_capacity() == 2

    def test_bfs_order_from_is_distance_sorted(self):
        g = cycle_graph(8)
        order = g.bfs_order_from(g.index_of(0))
        dist = g.bfs_dist_view()
        distances = [dist[i] for i in order]
        assert distances == sorted(distances)
        assert len(order) == 8


class TestMutationBugfixes:
    """Regressions for the PR-6 graph-core mutation bugs."""

    def test_add_clique_duplicate_labels_no_self_loop(self):
        g = Graph()
        g.add_clique(["a", "b", "a"])
        assert g.num_edges == 1
        assert not g.has_edge("a", "a")
        assert g.index_of("a") not in g.adjacency_view()[g.index_of("a")]
        assert sorted(g.edges()) == [("a", "b")]

    def test_add_clique_all_duplicates_is_noop_edgewise(self):
        g = Graph()
        g.add_clique(["x", "x", "x"])
        assert g.num_nodes == 1
        assert g.num_edges == 0
        assert list(g.edges()) == []

    def test_add_clique_edge_count_matches_edges(self):
        g = Graph()
        g.add_clique([1, 2, 3, 2, 1])
        assert g.num_edges == len(list(g.edges())) == 3

    def test_re_add_vertex_preserves_weight(self):
        g = Graph()
        g.add_vertex("a", weight=5.0)
        g.add_vertex("a")
        assert g.node_weight("a") == 5.0

    def test_re_add_vertex_with_weight_updates(self):
        g = Graph()
        g.add_vertex("a", weight=5.0)
        g.add_vertex("a", weight=2.5)
        assert g.node_weight("a") == 2.5

    def test_add_vertex_rejects_non_positive_weight(self):
        g = Graph()
        for bad in (0, 0.0, -1.0):
            with pytest.raises(GraphError):
                g.add_vertex("a", weight=bad)
        g.add_vertex("a", weight=1.5)
        with pytest.raises(GraphError):
            g.add_vertex("a", weight=-2.0)
        assert g.node_weight("a") == 1.5

    def test_min_degree_node_unknown_candidate(self):
        g = path_graph(3)
        with pytest.raises(GraphError):
            g.min_degree_node(candidates=[0, "missing"])

    def test_min_degree_node_removed_candidate(self):
        g = path_graph(3)
        g.remove_vertex(2)
        with pytest.raises(GraphError):
            g.min_degree_node(candidates=[0, 2])
        assert g.min_degree_node(candidates=[0, 1]) == 0
