"""Tests for hMETIS-style .part partition files."""

import pytest

from repro.core.hypergraph import Hypergraph
from repro.core.kway import recursive_bisection
from repro.core.partition import Bipartition
from repro.io.parts import (
    PartFormatError,
    format_parts,
    parse_parts,
    read_parts,
    write_parts,
)


@pytest.fixture
def square():
    return Hypergraph(edges={"a": [1, 2], "b": [2, 3], "c": [3, 4], "d": [4, 1]})


class TestFormat:
    def test_bipartition_round_trip(self, square):
        bp = Bipartition(square, {1, 2}, {3, 4})
        text = format_parts(bp)
        blocks = parse_parts(text, square)
        assert blocks == [{1, 2}, {3, 4}]

    def test_explicit_order(self, square):
        bp = Bipartition(square, {1, 2}, {3, 4})
        text = format_parts(bp, order=[4, 3, 2, 1])
        assert text.splitlines() == ["1", "1", "0", "0"]
        blocks = parse_parts(text, square, order=[4, 3, 2, 1])
        assert blocks == [{1, 2}, {3, 4}]

    def test_kway_round_trip(self, square):
        kp = recursive_bisection(square, 4, num_starts=1, seed=0)
        blocks = parse_parts(format_parts(kp), square)
        assert len(blocks) == 4
        assert set().union(*blocks) == {1, 2, 3, 4}

    def test_bad_order_rejected(self, square):
        bp = Bipartition(square, {1, 2}, {3, 4})
        with pytest.raises(PartFormatError):
            format_parts(bp, order=[1, 2, 3])


class TestParse:
    def test_wrong_line_count(self, square):
        with pytest.raises(PartFormatError):
            parse_parts("0\n1\n", square)

    def test_non_integer(self, square):
        with pytest.raises(PartFormatError):
            parse_parts("0\nx\n0\n1\n", square)

    def test_negative_id(self, square):
        with pytest.raises(PartFormatError):
            parse_parts("0\n-1\n0\n1\n", square)

    def test_gap_in_ids(self, square):
        with pytest.raises(PartFormatError):
            parse_parts("0\n0\n2\n2\n", square)

    def test_blank_lines_ignored(self, square):
        blocks = parse_parts("0\n\n0\n1\n1\n\n", square)
        assert len(blocks) == 2


class TestFiles:
    def test_file_round_trip(self, square, tmp_path):
        bp = Bipartition(square, {1, 3}, {2, 4})
        path = tmp_path / "cut.part"
        write_parts(bp, path)
        blocks = read_parts(path, square)
        assert blocks == [{1, 3}, {2, 4}]

    def test_interop_with_hgr(self, tmp_path):
        """The canonical flow: .hgr in, partition, .part out, verify."""
        from repro.core.algorithm1 import algorithm1
        from repro.io import read_hgr, write_hgr
        from repro.metrics.cut import cutsize

        h = Hypergraph(edges=[[1, 2], [2, 3], [3, 4], [4, 5], [5, 6]])
        hgr_path = tmp_path / "chain.hgr"
        write_hgr(h, hgr_path)
        loaded = read_hgr(hgr_path)
        bp = algorithm1(loaded, num_starts=5, seed=0).bipartition
        part_path = tmp_path / "chain.part"
        write_parts(bp, part_path)
        blocks = read_parts(part_path, loaded)
        assert cutsize(loaded, blocks[0]) == bp.cutsize
