"""Tests for netlist perturbation utilities."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hypergraph import Hypergraph
from repro.generators.netlists import clustered_netlist
from repro.generators.perturb import (
    add_random_nets,
    hierarchy_decay_experiment,
    remove_random_nets,
    rewire_nets,
)
from tests.conftest import hypergraphs


@pytest.fixture
def netlist():
    return clustered_netlist(40, 70, "std_cell", seed=81)


class TestRewire:
    def test_zero_fraction_identity(self, netlist):
        assert rewire_nets(netlist, 0.0, seed=0) == netlist

    def test_original_untouched(self, netlist):
        snapshot = netlist.copy()
        rewire_nets(netlist, 1.0, seed=0)
        assert netlist == snapshot

    def test_counts_and_sizes_preserved(self, netlist):
        rewired = rewire_nets(netlist, 1.0, seed=0)
        assert rewired.num_edges == netlist.num_edges
        assert rewired.edge_size_histogram() == netlist.edge_size_histogram()
        assert set(rewired.edge_names) == set(netlist.edge_names)

    def test_weights_preserved(self):
        h = Hypergraph()
        h.add_edge([1, 2], name="x", weight=5.0)
        h.add_edge([2, 3], name="y")
        rewired = rewire_nets(h, 1.0, seed=0)
        assert rewired.edge_weight("x") == 5.0

    def test_partial_fraction(self, netlist):
        rewired = rewire_nets(netlist, 0.5, seed=0)
        changed = sum(
            1
            for name in netlist.edge_names
            if rewired.edge_members(name) != netlist.edge_members(name)
        )
        # About half the nets move (some random redraws may coincide).
        assert changed >= 0.25 * netlist.num_edges

    def test_bad_fraction(self, netlist):
        with pytest.raises(ValueError):
            rewire_nets(netlist, 1.5)
        with pytest.raises(ValueError):
            rewire_nets(netlist, -0.1)

    @settings(max_examples=25)
    @given(hypergraphs(), st.floats(0.0, 1.0))
    def test_always_valid(self, h, fraction):
        rewired = rewire_nets(h, fraction, seed=0)
        rewired.validate()
        assert rewired.num_edges == h.num_edges


class TestAddRemove:
    def test_add(self, netlist):
        bigger = add_random_nets(netlist, 10, seed=0)
        assert bigger.num_edges == netlist.num_edges + 10
        assert bigger.has_edge(("noise", 0))

    def test_add_zero(self, netlist):
        assert add_random_nets(netlist, 0, seed=0) == netlist

    def test_add_bad_args(self, netlist):
        with pytest.raises(ValueError):
            add_random_nets(netlist, -1)
        with pytest.raises(ValueError):
            add_random_nets(netlist, 1, size_range=(1, 3))
        with pytest.raises(ValueError):
            add_random_nets(netlist, 1, size_range=(4, 2))

    def test_remove(self, netlist):
        smaller = remove_random_nets(netlist, 0.5, seed=0)
        assert smaller.num_edges == netlist.num_edges - round(0.5 * netlist.num_edges)
        assert smaller.num_vertices == netlist.num_vertices

    def test_remove_all(self, netlist):
        empty = remove_random_nets(netlist, 1.0, seed=0)
        assert empty.num_edges == 0

    def test_remove_bad_fraction(self, netlist):
        with pytest.raises(ValueError):
            remove_random_nets(netlist, 2.0)


class TestDecayExperiment:
    def test_rows_and_trend(self):
        rows = hierarchy_decay_experiment(
            num_modules=60,
            num_signals=100,
            fractions=(0.0, 1.0),
            trials=2,
            num_starts=10,
            seed=0,
        )
        assert [row["rewired_fraction"] for row in rows] == [0.0, 1.0]
        assert rows[1]["mean_cut"] >= rows[0]["mean_cut"]
