"""Cross-module property-based tests (hypothesis).

These exercise whole pipelines on random inputs and assert the structural
invariants the paper's constructions guarantee — the safety net that unit
tests of individual modules cannot provide.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.cutstate import CutState
from repro.core.algorithm1 import algorithm1
from repro.core.boundary import boundary_graph
from repro.core.complete_cut import complete_cut, optimal_completion_size
from repro.core.dual_cut import double_bfs_cut, partial_bipartition, random_longest_bfs_path
from repro.core.exact import branch_and_bound_min_cut
from repro.core.granularize import granularize, project_partition
from repro.core.hypergraph import Hypergraph
from repro.core.intersection import intersection_graph
from repro.core.kway import recursive_bisection
from repro.core.validation import (
    check_bipartition,
    check_boundary_graph,
    check_completion,
    check_graph_cut,
    check_partial_bipartition,
)
from repro.io import hypergraph_from_json, hypergraph_to_json, parse_hgr, format_hgr
from repro.metrics.cut import cutsize
from tests.conftest import connected_hypergraphs, hypergraphs


class TestFullPipelineInvariants:
    @settings(max_examples=40, deadline=None)
    @given(connected_hypergraphs())
    def test_every_stage_invariant(self, h):
        """Run all of Algorithm I's stages and check every invariant."""
        ig = intersection_graph(h)
        g = ig.graph
        rng = random.Random(0)
        u, v, _ = random_longest_bfs_path(g, rng=rng)
        if u == v:
            return
        for mode in ("balanced", "level"):
            cut = double_bfs_cut(g, u, v, rng=rng, mode=mode)
            check_graph_cut(g, cut)
            partial = partial_bipartition(ig, cut)
            check_partial_bipartition(ig, cut, partial)
            bg = boundary_graph(g, cut)
            check_boundary_graph(ig, cut, bg)
            completion = complete_cut(bg)
            check_completion(bg, completion)
            # The greedy can exceed the optimum by more than one per
            # component (hypothesis found a connected G' with greedy 7 vs
            # optimum 5, so the paper's "within one of optimum" theorem
            # does not hold unconditionally); assert only what is provable:
            # the exact König bound from below, and maximality — every
            # loser must be justified by an adjacent winner, else it could
            # have been a winner itself.
            assert completion.num_losers >= optimal_completion_size(bg)
            winners = completion.winners
            for loser in completion.losers:
                assert any(n in winners for n in bg.graph.neighbors_view(loser))

    @settings(max_examples=30, deadline=None)
    @given(hypergraphs(weighted=True))
    def test_algorithm1_weighted_instances(self, h):
        result = algorithm1(h, num_starts=3, seed=0, weighted_balance=True)
        check_bipartition(result.bipartition)

    @settings(max_examples=20, deadline=None)
    @given(hypergraphs(max_vertices=10, max_edges=10))
    def test_heuristic_vs_exact_sandwich(self, h):
        """exact <= heuristic; heuristic valid; exact respects constraints."""
        exact = branch_and_bound_min_cut(h)
        heur = algorithm1(h, num_starts=5, seed=0)
        assert exact.cutsize <= heur.cutsize
        check_bipartition(exact)
        check_bipartition(heur.bipartition)


class TestConservationLaws:
    @settings(max_examples=30, deadline=None)
    @given(hypergraphs())
    def test_cutsize_side_symmetric(self, h):
        result = algorithm1(h, num_starts=2, seed=1)
        bp = result.bipartition
        assert cutsize(h, bp.left) == cutsize(h, bp.right)

    @settings(max_examples=25, deadline=None)
    @given(hypergraphs(weighted=True))
    def test_granularize_partition_project_round_trip(self, h):
        grains = granularize(h, grain=1.0)
        result = algorithm1(grains.hypergraph, num_starts=2, seed=0)
        back = project_partition(grains, result.bipartition)
        assert back.left | back.right == set(h.vertices)
        assert back.left and back.right or h.num_vertices < 2

    @settings(max_examples=25, deadline=None)
    @given(hypergraphs(), st.integers(2, 4))
    def test_kway_objectives_consistent(self, h, k):
        if h.num_vertices < k:
            return
        kp = recursive_bisection(h, k, num_starts=2, seed=0)
        # connectivity >= cutsize; SOED >= 2 * cutsize; all <= bounds
        assert kp.connectivity >= kp.cutsize
        assert kp.sum_external_degrees >= 2 * kp.cutsize
        assert kp.cutsize <= h.num_edges
        assert kp.connectivity <= h.num_edges * (k - 1)

    @settings(max_examples=25, deadline=None)
    @given(hypergraphs(weighted=True))
    def test_io_preserves_partitioning_behaviour(self, h):
        """Round-tripped hypergraphs partition identically (same seed)."""
        back = hypergraph_from_json(hypergraph_to_json(h))
        a = algorithm1(h, num_starts=2, seed=3)
        b = algorithm1(back, num_starts=2, seed=3)
        assert a.cutsize == b.cutsize

    @settings(max_examples=25, deadline=None)
    @given(hypergraphs())
    def test_hgr_round_trip_preserves_cut_structure(self, h):
        text, index = format_hgr(h)
        back = parse_hgr(text)
        # any cut maps across the relabeling with identical cutsize
        vertices = sorted(h.vertices, key=repr)
        left = set(vertices[: max(1, len(vertices) // 2)])
        mapped_left = {index[v] for v in left}
        assert cutsize(h, left) == cutsize(back, mapped_left)


class TestCutStateAgainstBipartition:
    @settings(max_examples=25, deadline=None)
    @given(hypergraphs(weighted=True), st.lists(st.integers(0, 12), max_size=25))
    def test_weighted_cutsize_tracks(self, h, moves):
        vertices = h.vertices
        state = CutState(h, set(vertices[: max(1, len(vertices) // 2)]))
        for m in moves:
            v = vertices[m % len(vertices)]
            if state.side_sizes[state.side[v]] > 1:  # keep both sides non-empty
                state.apply_move(v)
        bp = state.to_bipartition()
        assert state.cutsize == bp.cutsize
        assert state.weighted_cutsize == pytest.approx(bp.weighted_cutsize)
        assert state.weight_imbalance() == pytest.approx(bp.weight_imbalance)
