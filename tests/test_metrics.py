"""Tests for the metrics package (cut, balance, quotient)."""

import math

import pytest
from hypothesis import given, settings

from repro.core.hypergraph import Hypergraph
from repro.core.partition import Bipartition
from repro.metrics import (
    cardinality_imbalance,
    crossing_edges,
    crossing_fraction_by_size,
    cutsize,
    is_bisection,
    quotient_cut,
    ratio_cut,
    satisfies_r_bipartition,
    scaled_cost,
    weight_imbalance,
    weight_imbalance_fraction,
    weighted_cutsize,
)
from repro.metrics.balance import within_weight_tolerance
from tests.conftest import hypergraphs


@pytest.fixture
def square():
    return Hypergraph(
        edges={"e12": [1, 2], "e23": [2, 3], "e34": [3, 4], "e41": [4, 1]}
    )


class TestCutMetrics:
    def test_cutsize(self, square):
        assert cutsize(square, {1, 2}) == 2
        assert cutsize(square, {1, 3}) == 4

    def test_crossing_edges(self, square):
        assert crossing_edges(square, {1, 2}) == frozenset({"e23", "e41"})

    def test_weighted_cutsize(self):
        h = Hypergraph()
        h.add_edge([1, 2], name="a", weight=3.0)
        h.add_edge([2, 3], name="b", weight=0.5)
        assert weighted_cutsize(h, {1}) == 3.0
        assert weighted_cutsize(h, {1, 2}) == 0.5

    def test_accepts_any_iterable(self, square):
        assert cutsize(square, frozenset({1, 2})) == cutsize(square, {1, 2})

    def test_crossing_fraction_by_size(self):
        h = Hypergraph(
            edges={"small": [1, 2], "big": list(range(1, 11)), "big2": list(range(5, 15))}
        )
        bp = Bipartition(h, set(range(1, 8)), set(range(8, 15)))
        fractions = crossing_fraction_by_size(bp, thresholds=(10, 2))
        assert fractions[10] == 1.0  # both 10-pin edges cross
        assert 0 < fractions[2] <= 1.0

    def test_crossing_fraction_nan_when_absent(self, square):
        bp = Bipartition(square, {1, 2}, {3, 4})
        fractions = crossing_fraction_by_size(bp, thresholds=(20,))
        assert math.isnan(fractions[20])


class TestBalanceMetrics:
    def test_cardinality(self, square):
        assert cardinality_imbalance(square, {1}) == 2
        assert is_bisection(square, {1, 2})
        assert not is_bisection(square, {1})

    def test_r_bipartition(self, square):
        assert satisfies_r_bipartition(square, {1}, 2)
        assert not satisfies_r_bipartition(square, {1}, 1)
        with pytest.raises(ValueError):
            satisfies_r_bipartition(square, {1}, -1)

    def test_weight_imbalance(self):
        h = Hypergraph(vertices=[1, 2, 3])
        h.set_vertex_weight(1, 5.0)
        assert weight_imbalance(h, {1}) == 3.0
        assert weight_imbalance_fraction(h, {1}) == pytest.approx(3.0 / 7.0)

    def test_weight_fraction_empty(self):
        assert weight_imbalance_fraction(Hypergraph(), set()) == 0.0

    def test_within_weight_tolerance(self):
        h = Hypergraph(vertices=range(10))
        assert within_weight_tolerance(h, set(range(5)), 0.0)
        assert within_weight_tolerance(h, set(range(6)), 0.2)
        assert not within_weight_tolerance(h, set(range(8)), 0.2)
        with pytest.raises(ValueError):
            within_weight_tolerance(h, set(), -1)


class TestQuotientMetrics:
    def test_quotient_cut(self, square):
        assert quotient_cut(square, {1}) == 2.0
        assert quotient_cut(square, {1, 2}) == 1.0

    def test_ratio_cut(self, square):
        assert ratio_cut(square, {1, 2}) == pytest.approx(0.5)

    def test_degenerate_infinite(self, square):
        assert quotient_cut(square, set()) == float("inf")
        assert ratio_cut(square, {1, 2, 3, 4}) == float("inf")

    def test_scaled_cost(self):
        h = Hypergraph()
        h.add_edge([1, 2], name="a", weight=2.0)
        assert scaled_cost(h, {1}) == pytest.approx(2.0 / (1.0 * 1.0))
        assert scaled_cost(h, set()) == float("inf")


class TestConsistencyWithBipartition:
    @settings(max_examples=30)
    @given(hypergraphs(weighted=True))
    def test_free_functions_match_class(self, h):
        vertices = sorted(h.vertices, key=repr)
        left = set(vertices[: max(1, len(vertices) // 2)])
        right = set(vertices) - left
        if not right:
            return
        bp = Bipartition(h, left, right)
        assert cutsize(h, left) == bp.cutsize
        assert weighted_cutsize(h, left) == pytest.approx(bp.weighted_cutsize)
        assert crossing_edges(h, left) == bp.crossing_edges
        assert cardinality_imbalance(h, left) == bp.cardinality_imbalance
        assert weight_imbalance(h, left) == pytest.approx(bp.weight_imbalance)
        assert quotient_cut(h, left) == pytest.approx(bp.quotient_cut)
        assert ratio_cut(h, left) == pytest.approx(bp.ratio_cut)
