"""Tests for the supervised worker pool and its Algorithm I integration.

Covers the supervisor contract directly (crash recovery, hang detection,
retry-with-seed-advance, deadline expiry, sequential fallback, input-order
results) and through ``algorithm1(parallel=k)``: injected worker crashes
and hangs must still produce a valid bipartition and a *truthful*
``Algorithm1Result`` start count.
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.core.algorithm1 import algorithm1
from repro.generators import random_hypergraph
from repro.runtime import (
    Deadline,
    SupervisedPool,
    advance_seed,
    faults,
)


@pytest.fixture(autouse=True)
def _clean_fault_plan():
    yield
    faults.configure(None)


@pytest.fixture(scope="module")
def instance():
    return random_hypergraph(50, 85, seed=21, connect=True)


def assert_valid_bipartition(h, bp):
    left, right = set(bp.left), set(bp.right)
    assert left and right
    assert not (left & right)
    assert left | right == set(h.vertices)


# ----------------------------------------------------------------------
# advance_seed


class TestAdvanceSeed:
    def test_attempt_zero_is_identity(self):
        assert advance_seed(12345, 0) == 12345

    def test_deterministic(self):
        assert advance_seed(7, 3) == advance_seed(7, 3)

    def test_attempts_map_to_distinct_seeds(self):
        seeds = {advance_seed(99, a) for a in range(8)}
        assert len(seeds) == 8

    def test_stays_in_63_bits(self):
        for attempt in range(5):
            assert 0 <= advance_seed((1 << 63) - 1, attempt) < (1 << 63)


# ----------------------------------------------------------------------
# SupervisedPool direct


def _double(payload):
    return payload * 2


def _crash_if_flagged(payload):
    flag, x = payload
    if flag == "crash":
        os._exit(70)
    if flag == "raise":
        raise ValueError(f"injected failure for {x}")
    if flag == "hang":
        time.sleep(30)
    return x * 10


def _retry_payload(payload, attempt):
    _flag, x = payload
    return ("ok", x)


class TestSupervisedPool:
    def test_plain_map_is_clean_and_ordered(self):
        pool = SupervisedPool(_double, max_workers=3)
        results, report = pool.map([(i, i) for i in range(7)])
        assert [r.value for r in results] == [0, 2, 4, 6, 8, 10, 12]
        assert all(r.ok and r.attempts == 1 and not r.sequential for r in results)
        assert not report.degraded
        assert report.summary() == "clean"
        assert report.completed == 7 and report.failed == 0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            SupervisedPool(_double, max_workers=0)
        with pytest.raises(ValueError):
            SupervisedPool(_double, max_workers=1, max_retries=-1)
        with pytest.raises(ValueError):
            SupervisedPool(_double, max_workers=1, task_timeout=0)

    def test_crash_recovered_by_retry(self):
        pool = SupervisedPool(
            _crash_if_flagged, max_workers=2, max_retries=2, reseed=_retry_payload
        )
        results, report = pool.map([(0, ("crash", 4)), (1, ("ok", 5))])
        assert results[0].ok and results[0].value == 40
        assert results[0].attempts == 2  # one crash + one clean retry
        assert results[1].ok and results[1].attempts == 1
        assert report.crashes == 1 and report.retries == 1
        assert report.degraded

    def test_worker_exception_recovered_by_retry(self):
        pool = SupervisedPool(
            _crash_if_flagged, max_workers=2, max_retries=2, reseed=_retry_payload
        )
        results, report = pool.map([(0, ("raise", 3))])
        assert results[0].ok and results[0].value == 30
        assert report.retries == 1
        assert any("ValueError" in err for err in report.errors)

    def test_exhausted_retries_fall_back_to_sequential(self):
        # The reseed keeps the crash flag, so every forked attempt dies;
        # the sequential fallback (in-process, no os._exit reachable for
        # "raise" mode here) must still record a truthful error.
        pool = SupervisedPool(
            lambda payload: (_ for _ in ()).throw(RuntimeError("always fails")),
            max_workers=1,
            max_retries=1,
        )
        results, report = pool.map([(0, None)])
        assert not results[0].ok
        assert results[0].sequential
        assert "sequential fallback also failed" in results[0].error
        assert report.failed == 1
        assert report.sequential_fallbacks == 1

    def test_hang_detected_and_marked_failed_without_inprocess_rerun(self):
        pool = SupervisedPool(
            _crash_if_flagged, max_workers=2, task_timeout=0.25, max_retries=0
        )
        started = time.monotonic()
        results, report = pool.map([(0, ("hang", 1)), (1, ("ok", 2))])
        elapsed = time.monotonic() - started
        # A hung task with no retry budget is failed, never rerun
        # in-process (which would block for the full 30s sleep).
        assert elapsed < 10.0
        assert not results[0].ok
        assert "hung" in results[0].error
        assert results[1].ok and results[1].value == 20
        assert report.hangs == 1
        assert report.degraded

    def test_hang_recovered_by_retry(self):
        pool = SupervisedPool(
            _crash_if_flagged,
            max_workers=1,
            task_timeout=0.25,
            max_retries=1,
            reseed=_retry_payload,
        )
        results, report = pool.map([(0, ("hang", 6))])
        assert results[0].ok and results[0].value == 60
        assert results[0].attempts == 2
        assert report.hangs == 1 and report.retries == 1

    def test_reseed_receives_advancing_attempts(self):
        observed = []

        def reseed(payload, attempt):
            observed.append(attempt)
            return ("ok", payload[1])

        pool = SupervisedPool(
            _crash_if_flagged, max_workers=1, max_retries=3, reseed=reseed
        )
        results, _report = pool.map([(0, ("raise", 2))])
        assert results[0].ok
        assert observed == [1]

    def test_deadline_expiry_reports_every_task(self):
        pool = SupervisedPool(
            lambda payload: time.sleep(5.0),
            max_workers=1,
            deadline=Deadline.after(0.2),
        )
        started = time.monotonic()
        results, report = pool.map([(i, i) for i in range(4)])
        elapsed = time.monotonic() - started
        assert elapsed < 5.0  # in-flight worker was terminated, not joined
        assert report.deadline_expired
        assert report.degraded
        assert len(results) == 4
        assert all(not r.ok for r in results)
        assert any("mid-execution" in r.error for r in results)
        assert any("before execution" in r.error for r in results)

    def test_seed_advance_used_end_to_end(self):
        # Worker crashes only on the original seed; the retried payload
        # must be exactly advance_seed(seed, 1).
        original = 424242

        def worker(seed):
            if seed == original:
                os._exit(70)
            return seed

        pool = SupervisedPool(
            worker,
            max_workers=1,
            max_retries=2,
            reseed=lambda seed, attempt: advance_seed(original, attempt),
        )
        results, report = pool.map([(0, original)])
        assert results[0].ok
        assert results[0].value == advance_seed(original, 1)
        assert report.crashes == 1

    def test_abort_sets_the_structured_aborted_flag(self):
        """abort() marks cut tasks via TaskResult.aborted — callers (the
        daemon's drain path above all) branch on the flag, never on the
        abort message text."""
        pool = SupervisedPool(_crash_if_flagged, max_workers=1, max_retries=3)
        aborter = threading.Timer(0.3, pool.abort, args=("drain cutoff",))
        aborter.start()
        try:
            results, report = pool.map(
                [("running", ("hang", 1)), ("queued", ("ok", 2))]
            )
        finally:
            aborter.cancel()
        by_key = {r.key: r for r in results}
        assert not by_key["running"].ok
        assert by_key["running"].aborted is True
        assert by_key["running"].error == "drain cutoff mid-execution"
        assert not by_key["queued"].ok
        assert by_key["queued"].aborted is True
        assert by_key["queued"].error == "drain cutoff before execution"

    def test_ordinary_failures_are_not_flagged_aborted(self):
        pool = SupervisedPool(
            _crash_if_flagged,
            max_workers=1,
            max_retries=0,
            sequential_fallback=False,
        )
        results, _report = pool.map([("x", ("crash", 1))])
        assert not results[0].ok
        assert results[0].aborted is False


# ----------------------------------------------------------------------
# Algorithm I through the supervisor (ISSUE satellite: supervisor coverage)


class TestAlgorithm1Supervised:
    def test_injected_crashes_still_produce_valid_result(self, instance):
        # Every forked attempt crashes (probability 1); each start is
        # recovered by the hardened sequential fallback, so all starts
        # complete and the counter stays truthful.
        faults.configure("parallel.start=crash:1", seed=0)
        result = algorithm1(
            instance, num_starts=6, seed=123, parallel=2, max_retries=1
        )
        assert_valid_bipartition(instance, result.bipartition)
        assert len(result.starts) == 6
        assert result.counters["num_starts"] == 6
        assert result.degraded
        assert "crash" in result.degrade_reason

    def test_injected_hangs_still_produce_valid_result(self, instance):
        # Hangs are probabilistic (0.5 per attempt): some starts may be
        # lost after retries, but whatever is reported must be valid and
        # the start count truthful.
        faults.configure("parallel.start=hang:0.5:30", seed=7)
        result = algorithm1(
            instance,
            num_starts=6,
            seed=123,
            parallel=3,
            task_timeout=0.3,
            max_retries=2,
        )
        assert_valid_bipartition(instance, result.bipartition)
        assert 1 <= len(result.starts) <= 6
        assert result.counters["num_starts"] == len(result.starts)
        if len(result.starts) < 6:
            assert result.degraded

    def test_retry_with_seed_advance_produces_valid_result(self, instance):
        # Kill mode with probability 0.5: retries re-fork with the
        # advanced seed; survivors plus sequential fallbacks must cover
        # every start.
        faults.configure("parallel.start=kill:0.5", seed=3)
        result = algorithm1(
            instance, num_starts=6, seed=123, parallel=2, max_retries=2
        )
        assert_valid_bipartition(instance, result.bipartition)
        assert len(result.starts) == 6
        assert result.counters["num_starts"] == 6

    def test_faultless_parallel_run_matches_sequential_predrawn(self, instance):
        # The supervisor must not perturb the worker-count-invariant
        # reproducibility contract on the fault-free path.
        a = algorithm1(instance, num_starts=4, seed=9, parallel=1)
        b = algorithm1(instance, num_starts=4, seed=9, parallel=3)
        assert a.cutsize == b.cutsize
        assert a.bipartition == b.bipartition
        assert not a.degraded and not b.degraded
