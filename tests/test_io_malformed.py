"""Malformed-input regression tests for every reader (IO hardening).

Each parser must raise its typed :class:`repro.io.ParseError` subclass —
never a bare ``ValueError``/``KeyError``/``IndexError`` — with the
1-based line number of the offending *original* line (comments and
blanks included in the count), and the ``read_*`` wrappers must attach
the filename so the rendered message reads
``<path>: line <n>: <problem>``.
"""

from __future__ import annotations

import pytest

from repro.io import (
    HgrFormatError,
    JsonFormatError,
    NetlistFormatError,
    ParseError,
)
from repro.io.errors import ParseError as ErrorsParseError
from repro.io.hgr import parse_hgr, read_hgr
from repro.io.json_io import hypergraph_from_json, read_json
from repro.io.netlist import parse_netlist, read_netlist


class TestParseErrorType:
    def test_render_with_source_and_line(self):
        err = ParseError("bad token", source="design.hgr", line=7)
        assert str(err) == "design.hgr: line 7: bad token"
        assert err.source == "design.hgr"
        assert err.line == 7
        assert err.message == "bad token"

    def test_render_without_context(self):
        assert str(ParseError("just bad")) == "just bad"
        assert str(ParseError("bad", line=2)) == "line 2: bad"

    def test_with_source_preserves_subclass_and_line(self):
        err = HgrFormatError("bad pin", line=4)
        attached = err.with_source("a.hgr")
        assert type(attached) is HgrFormatError
        assert attached.line == 4
        assert str(attached) == "a.hgr: line 4: bad pin"

    def test_is_a_value_error(self):
        # Callers that predate the typed hierarchy catch ValueError.
        for cls in (ParseError, HgrFormatError, NetlistFormatError, JsonFormatError):
            assert issubclass(cls, ValueError)

    def test_public_reexport_is_the_same_class(self):
        assert ParseError is ErrorsParseError


class TestMalformedHgr:
    def test_empty_content(self):
        with pytest.raises(HgrFormatError, match="empty"):
            parse_hgr("")
        with pytest.raises(HgrFormatError, match="empty"):
            parse_hgr("% only a comment\n\n")

    def test_bad_header_shape(self):
        with pytest.raises(HgrFormatError, match="bad header") as exc_info:
            parse_hgr("1 2 3 4\n")
        assert exc_info.value.line == 1

    def test_non_integer_header(self):
        with pytest.raises(HgrFormatError, match="non-integer header"):
            parse_hgr("two 3\n1 2\n")

    def test_unknown_fmt_code(self):
        with pytest.raises(HgrFormatError, match="unknown fmt code"):
            parse_hgr("1 2 7\n1 2\n")

    def test_truncated_body(self):
        with pytest.raises(HgrFormatError, match="expected 2 body lines"):
            parse_hgr("2 3\n1 2\n")

    def test_non_integer_pin_reports_original_line_number(self):
        # Comments and blank lines before the bad edge still count, so
        # the reported number matches what an editor shows.
        text = "% header comment\n2 3\n\n1 2\n% mid comment\n1 x\n"
        with pytest.raises(HgrFormatError, match="non-integer pin") as exc_info:
            parse_hgr(text)
        assert exc_info.value.line == 6

    def test_pin_out_of_range(self):
        with pytest.raises(HgrFormatError, match="pins out of range") as exc_info:
            parse_hgr("1 3\n1 9\n")
        assert exc_info.value.line == 2

    def test_bad_edge_weight(self):
        with pytest.raises(HgrFormatError, match="bad weight 'w'") as exc_info:
            parse_hgr("1 3 1\nw 1 2\n")
        assert exc_info.value.line == 2

    def test_weighted_edge_needs_weight_and_pin(self):
        with pytest.raises(HgrFormatError, match="weight plus at least one pin"):
            parse_hgr("1 3 1\n2\n")

    def test_bad_vertex_weight(self):
        with pytest.raises(HgrFormatError, match="vertex weight line 1") as exc_info:
            parse_hgr("1 2 10\n1 2\nheavy\n2\n")
        assert exc_info.value.line == 3

    def test_read_attaches_filename(self, tmp_path):
        path = tmp_path / "broken.hgr"
        path.write_text("1 3\n1 x\n")
        with pytest.raises(HgrFormatError) as exc_info:
            read_hgr(path)
        assert str(exc_info.value).startswith(f"{path}: line 2:")


class TestMalformedNetlist:
    def test_line_without_colon(self):
        with pytest.raises(NetlistFormatError, match="expected '<signal>") as exc_info:
            parse_netlist("a: 1 2\nnot a statement\n")
        assert exc_info.value.line == 2

    def test_duplicate_signal(self):
        with pytest.raises(NetlistFormatError, match="duplicate signal 'a'") as exc_info:
            parse_netlist("a: 1 2\nb: 2 3\na: 3 4\n")
        assert exc_info.value.line == 3

    def test_signal_with_no_modules(self):
        with pytest.raises(NetlistFormatError, match="has no modules"):
            parse_netlist("a:\n")

    def test_empty_signal_name(self):
        with pytest.raises(NetlistFormatError, match="empty signal name"):
            parse_netlist(": 1 2\n")

    def test_bad_signal_weight(self):
        with pytest.raises(NetlistFormatError, match="bad signal weight"):
            parse_netlist("clk(fast): 1 2\n")

    def test_bad_module_statement(self):
        with pytest.raises(NetlistFormatError, match="%module") as exc_info:
            parse_netlist("a: 1 2\n%module 3\n")
        assert exc_info.value.line == 2

    def test_bad_module_weight(self):
        with pytest.raises(NetlistFormatError, match="bad weight"):
            parse_netlist("%module 3 weight=big\n")

    def test_comments_count_toward_line_numbers(self):
        text = "# banner\n\na: 1 2\n# more\nbad line\n"
        with pytest.raises(NetlistFormatError) as exc_info:
            parse_netlist(text)
        assert exc_info.value.line == 5

    def test_read_attaches_filename(self, tmp_path):
        path = tmp_path / "broken.net"
        path.write_text("a: 1 2\nbogus\n")
        with pytest.raises(NetlistFormatError) as exc_info:
            read_netlist(path)
        assert str(exc_info.value).startswith(f"{path}: line 2:")


class TestMalformedJson:
    def test_syntactically_invalid_json_carries_decoder_line(self):
        text = '{\n  "vertices": [],\n  "edges": [,]\n}\n'
        with pytest.raises(JsonFormatError, match="invalid JSON") as exc_info:
            hypergraph_from_json(text)
        assert exc_info.value.line == 3

    def test_wrong_top_level_shape(self):
        with pytest.raises(JsonFormatError, match="'vertices' and 'edges'"):
            hypergraph_from_json("[1, 2, 3]")
        with pytest.raises(JsonFormatError, match="'vertices' and 'edges'"):
            hypergraph_from_json('{"vertices": []}')
        with pytest.raises(JsonFormatError, match="must be lists"):
            hypergraph_from_json('{"vertices": {}, "edges": []}')

    def test_misshapen_vertex_entry(self):
        with pytest.raises(JsonFormatError, match="vertex entry 0"):
            hypergraph_from_json('{"vertices": [["a"]], "edges": []}')

    def test_non_numeric_vertex_weight(self):
        with pytest.raises(JsonFormatError, match="is not a number"):
            hypergraph_from_json('{"vertices": [["a", "heavy"]], "edges": []}')
        with pytest.raises(JsonFormatError, match="is not a number"):
            hypergraph_from_json('{"vertices": [["a", true]], "edges": []}')

    def test_misshapen_edge_entry(self):
        payload = '{"vertices": [["a", 1], ["b", 1]], "edges": [["n1", ["a", "b"]]]}'
        with pytest.raises(JsonFormatError, match="edge entry 0"):
            hypergraph_from_json(payload)

    def test_empty_pins_rejected(self):
        payload = '{"vertices": [["a", 1]], "edges": [["n1", [], 1]]}'
        with pytest.raises(JsonFormatError, match="non-empty list"):
            hypergraph_from_json(payload)

    def test_read_attaches_filename(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(JsonFormatError) as exc_info:
            read_json(path)
        assert str(exc_info.value).startswith(f"{path}:")
