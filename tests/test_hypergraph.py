"""Unit tests for the Hypergraph data structure."""

import pytest

from repro.core.hypergraph import Hypergraph, HypergraphError


class TestConstruction:
    def test_empty(self):
        h = Hypergraph()
        assert h.num_vertices == 0
        assert h.num_edges == 0
        assert h.num_pins == 0

    def test_from_mapping(self):
        h = Hypergraph(edges={"A": [1, 2], "B": [2, 3]})
        assert h.num_vertices == 3
        assert h.num_edges == 2
        assert h.edge_members("A") == frozenset({1, 2})

    def test_from_iterable_autonames(self):
        h = Hypergraph(edges=[[1, 2], [2, 3], [3, 4]])
        assert h.num_edges == 3
        assert set(h.edge_names) == {"e0", "e1", "e2"}

    def test_from_edge_list(self):
        h = Hypergraph.from_edge_list([[1, 2, 3], [3, 4]])
        assert h.num_pins == 5

    def test_explicit_vertices_plus_edges(self):
        h = Hypergraph(vertices=["x", "y", "z"], edges={"n": ["x", "y"]})
        assert h.num_vertices == 3
        assert h.vertex_degree("z") == 0

    def test_duplicate_pins_collapse(self):
        h = Hypergraph(edges={"n": [1, 1, 2, 2]})
        assert h.edge_size("n") == 2

    def test_auto_names_skip_taken(self):
        h = Hypergraph()
        h.add_edge([1, 2], name="e0")
        name = h.add_edge([2, 3])
        assert name != "e0"
        assert h.num_edges == 2


class TestErrors:
    def test_empty_edge_rejected(self):
        with pytest.raises(HypergraphError):
            Hypergraph(edges={"n": []})

    def test_duplicate_edge_name_rejected(self):
        h = Hypergraph(edges={"n": [1, 2]})
        with pytest.raises(HypergraphError):
            h.add_edge([3, 4], name="n")

    def test_nonpositive_vertex_weight_rejected(self):
        h = Hypergraph()
        with pytest.raises(HypergraphError):
            h.add_vertex("v", weight=0)
        with pytest.raises(HypergraphError):
            h.add_vertex("v", weight=-1.5)

    def test_nonpositive_edge_weight_rejected(self):
        h = Hypergraph()
        with pytest.raises(HypergraphError):
            h.add_edge([1, 2], weight=0)

    def test_unknown_edge_queries(self):
        h = Hypergraph(edges={"n": [1, 2]})
        with pytest.raises(HypergraphError):
            h.edge_members("missing")
        with pytest.raises(HypergraphError):
            h.edge_weight("missing")
        with pytest.raises(HypergraphError):
            h.remove_edge("missing")

    def test_unknown_vertex_queries(self):
        h = Hypergraph(edges={"n": [1, 2]})
        with pytest.raises(HypergraphError):
            h.vertex_weight(99)
        with pytest.raises(HypergraphError):
            h.incident_edges(99)
        with pytest.raises(HypergraphError):
            h.remove_vertex(99)
        with pytest.raises(HypergraphError):
            h.set_vertex_weight(99, 2.0)

    def test_induced_unknown_vertices_rejected(self):
        h = Hypergraph(edges={"n": [1, 2]})
        with pytest.raises(HypergraphError):
            h.induced([1, 99])


class TestWeights:
    def test_default_weights_are_one(self):
        h = Hypergraph(edges={"n": [1, 2]})
        assert h.vertex_weight(1) == 1.0
        assert h.edge_weight("n") == 1.0

    def test_set_vertex_weight(self):
        h = Hypergraph(edges={"n": [1, 2]})
        h.set_vertex_weight(1, 3.5)
        assert h.vertex_weight(1) == 3.5
        assert h.total_vertex_weight == 4.5

    def test_readding_vertex_updates_weight(self):
        h = Hypergraph()
        h.add_vertex("v", 1.0)
        h.add_vertex("v", 2.0)
        assert h.num_vertices == 1
        assert h.vertex_weight("v") == 2.0

    def test_weighted_edge(self):
        h = Hypergraph()
        h.add_edge([1, 2], name="clk", weight=4.0)
        assert h.edge_weight("clk") == 4.0


class TestIncidence:
    def test_incident_edges(self):
        h = Hypergraph(edges={"A": [1, 2, 3], "B": [3, 4]})
        assert h.incident_edges(3) == frozenset({"A", "B"})
        assert h.incident_edges(1) == frozenset({"A"})

    def test_vertex_degree(self):
        h = Hypergraph(edges={"A": [1, 2], "B": [1, 3], "C": [1, 4]})
        assert h.vertex_degree(1) == 3
        assert h.vertex_degree(4) == 1

    def test_neighbors(self):
        h = Hypergraph(edges={"A": [1, 2, 3], "B": [3, 4]})
        assert h.neighbors(3) == frozenset({1, 2, 4})
        assert h.neighbors(1) == frozenset({2, 3})

    def test_max_degree_and_size(self):
        h = Hypergraph(edges={"A": [1, 2, 3, 4, 5], "B": [1, 2]})
        assert h.max_edge_size == 5
        assert h.max_vertex_degree == 2

    def test_max_bounds_of_empty(self):
        h = Hypergraph()
        assert h.max_edge_size == 0
        assert h.max_vertex_degree == 0

    def test_num_pins(self):
        h = Hypergraph(edges={"A": [1, 2, 3], "B": [3, 4]})
        assert h.num_pins == 5

    def test_average_edge_size(self):
        h = Hypergraph(edges={"A": [1, 2, 3], "B": [3, 4]})
        assert h.average_edge_size() == 2.5
        assert Hypergraph().average_edge_size() == 0.0


class TestMutation:
    def test_remove_edge_keeps_vertices(self):
        h = Hypergraph(edges={"A": [1, 2], "B": [2, 3]})
        h.remove_edge("A")
        assert h.num_edges == 1
        assert 1 in h
        assert h.incident_edges(1) == frozenset()

    def test_remove_vertex_shrinks_edges(self):
        h = Hypergraph(edges={"A": [1, 2, 3]})
        h.remove_vertex(3)
        assert h.edge_members("A") == frozenset({1, 2})

    def test_remove_vertex_drops_empty_edges(self):
        h = Hypergraph(edges={"A": [1], "B": [1, 2]})
        h.remove_vertex(1)
        assert not h.has_edge("A")
        assert h.edge_members("B") == frozenset({2})

    def test_validate_after_mutations(self, small_random_hypergraph):
        h = small_random_hypergraph
        h.remove_edge(h.edge_names[0])
        h.remove_vertex(5)
        h.add_edge([0, 1, 2], name="new")
        h.validate()


class TestDerived:
    def test_induced_restricts_edges(self):
        h = Hypergraph(edges={"A": [1, 2, 3], "B": [3, 4], "C": [4, 5]})
        sub = h.induced({1, 2, 3})
        assert sub.num_vertices == 3
        assert sub.edge_members("A") == frozenset({1, 2, 3})
        assert sub.edge_members("B") == frozenset({3})  # kept as singleton
        assert not sub.has_edge("C")

    def test_induced_preserves_weights(self):
        h = Hypergraph(edges={"A": [1, 2]})
        h.set_vertex_weight(1, 7.0)
        sub = h.induced({1})
        assert sub.vertex_weight(1) == 7.0

    def test_restricted_to_edges(self):
        h = Hypergraph(edges={"A": [1, 2], "B": [2, 3]})
        sub = h.restricted_to_edges(["A"])
        assert sub.num_edges == 1
        assert sub.num_vertices == 3  # all vertices kept

    def test_connected_components(self):
        h = Hypergraph(edges={"A": [1, 2], "B": [2, 3], "C": [10, 11]})
        comps = sorted(h.connected_components(), key=len)
        assert [len(c) for c in comps] == [2, 3]
        assert not h.is_connected()

    def test_isolated_vertex_is_own_component(self):
        h = Hypergraph(vertices=[1, 2], edges={"A": [1, 2]})
        h.add_vertex(99)
        assert len(h.connected_components()) == 2

    def test_empty_is_connected(self):
        assert Hypergraph().is_connected()

    def test_clique_expansion(self):
        h = Hypergraph(edges={"A": [1, 2, 3]})
        g = h.clique_expansion()
        assert g.num_nodes == 3
        assert g.num_edges == 3  # triangle

    def test_star_expansion(self):
        h = Hypergraph(edges={"A": [1, 2, 3]})
        g = h.star_expansion()
        assert g.num_nodes == 4
        assert g.num_edges == 3
        assert ("edge", "A") in g

    def test_is_graph(self):
        assert Hypergraph(edges=[[1, 2], [2, 3]]).is_graph()
        assert not Hypergraph(edges=[[1, 2, 3]]).is_graph()

    def test_edge_size_histogram(self):
        h = Hypergraph(edges=[[1, 2], [3, 4], [1, 2, 3]])
        assert h.edge_size_histogram() == {2: 2, 3: 1}


class TestEquality:
    def test_copy_equal_but_independent(self, small_random_hypergraph):
        h = small_random_hypergraph
        c = h.copy()
        assert c == h
        c.add_edge([0, 1], name="extra")
        assert c != h
        assert not h.has_edge("extra")

    def test_eq_other_type(self):
        assert Hypergraph() != 42

    def test_repr(self):
        h = Hypergraph(edges={"A": [1, 2]})
        assert "num_vertices=2" in repr(h)

    def test_iteration_and_len(self):
        h = Hypergraph(vertices=[3, 1, 2])
        assert len(h) == 3
        assert list(h) == [3, 1, 2]
