"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.core.hypergraph import Hypergraph
from repro.io import write_hgr, write_netlist


@pytest.fixture
def hgr_file(tmp_path):
    h = Hypergraph(edges=[[1, 2], [2, 3], [3, 4], [4, 1], [1, 3]])
    path = tmp_path / "square.hgr"
    write_hgr(h, path)
    return str(path)


@pytest.fixture
def netlist_file(tmp_path):
    h = Hypergraph(edges={"a": [1, 2], "b": [2, 3]})
    path = tmp_path / "tiny.netlist"
    write_netlist(h, path)
    return str(path)


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for argv in (
            ["partition", "x.hgr"],
            ["generate", "--out", "x.hgr"],
            ["place", "x.hgr"],
            ["experiment", "table1"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.fn)

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestPartitionCommand:
    def test_algorithm1(self, hgr_file, capsys):
        assert main(["partition", hgr_file, "--starts", "5", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "cutsize" in out

    @pytest.mark.parametrize("algo", ["fm", "kl", "sa", "random", "spectral"])
    def test_baselines(self, hgr_file, algo, capsys):
        assert main(["partition", hgr_file, "--algorithm", algo]) == 0
        assert "cutsize" in capsys.readouterr().out

    def test_netlist_format(self, netlist_file, capsys):
        assert main(["partition", netlist_file]) == 0

    def test_assignment_output(self, hgr_file, tmp_path, capsys):
        out_file = tmp_path / "assign.json"
        main(["partition", hgr_file, "--assignment", str(out_file)])
        payload = json.loads(out_file.read_text())
        assert set(payload.values()) <= {"L", "R"}
        assert len(payload) == 4

    def test_parts_and_report_outputs(self, hgr_file, tmp_path):
        parts = tmp_path / "cut.part"
        report = tmp_path / "report.md"
        main(["partition", hgr_file, "--parts", str(parts), "--report", str(report)])
        assert len(parts.read_text().splitlines()) == 4
        assert report.read_text().startswith("# Partitioning report")

    def test_kway_mode(self, hgr_file, tmp_path, capsys):
        parts = tmp_path / "cut4.part"
        assert main(["partition", hgr_file, "--k", "4", "--parts", str(parts)]) == 0
        out = capsys.readouterr().out
        assert "connectivity" in out
        assert sorted(set(parts.read_text().split())) == ["0", "1", "2", "3"]

    def test_unknown_extension(self, tmp_path):
        bad = tmp_path / "file.xyz"
        bad.write_text("whatever")
        with pytest.raises(SystemExit):
            main(["partition", str(bad)])


class TestGenerateCommand:
    def test_suite_instance(self, tmp_path, capsys):
        out = tmp_path / "bd1.hgr"
        assert main(["generate", "--name", "Bd1", "--out", str(out)]) == 0
        assert out.exists()
        assert "103 vertices" in capsys.readouterr().out

    def test_random_kind(self, tmp_path):
        out = tmp_path / "r.json"
        assert main(["generate", "--kind", "random", "--modules", "20",
                     "--signals", "30", "--out", str(out)]) == 0
        assert out.exists()

    def test_difficult_kind(self, tmp_path, capsys):
        out = tmp_path / "d.netlist"
        assert main(["generate", "--kind", "difficult", "--modules", "20",
                     "--signals", "30", "--planted-cut", "1", "--out", str(out)]) == 0
        assert "planted optimum cutsize: 1" in capsys.readouterr().out

    def test_netlist_kind(self, tmp_path):
        out = tmp_path / "n.hgr"
        assert main(["generate", "--kind", "netlist", "--modules", "30",
                     "--signals", "50", "--technology", "pcb", "--out", str(out)]) == 0


class TestPlaceCommand:
    def test_place_report(self, hgr_file, tmp_path):
        report = tmp_path / "placement.md"
        main(["place", hgr_file, "--rows", "2", "--cols", "2", "--report", str(report)])
        assert "| hpwl |" in report.read_text()

    def test_place(self, hgr_file, tmp_path, capsys):
        out_file = tmp_path / "placement.json"
        assert main(["place", hgr_file, "--rows", "2", "--cols", "2",
                     "--assignment", str(out_file)]) == 0
        payload = json.loads(out_file.read_text())
        assert len(payload) == 4
        assert "HPWL" in capsys.readouterr().out


class TestExperimentCommand:
    def test_quick_table1(self, capsys):
        assert main(["experiment", "table1", "--quick", "--seed", "1"]) == 0
        assert "technology" in capsys.readouterr().out

    def test_quick_multistart(self, capsys):
        assert main(["experiment", "multistart", "--quick"]) == 0
        assert "num_starts" in capsys.readouterr().out

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["experiment", "nonsense"])


class TestPortfolioCommand:
    def test_portfolio(self, hgr_file, tmp_path, capsys):
        parts = tmp_path / "best.part"
        assert main(["portfolio", hgr_file, "--methods", "fm,algorithm1",
                     "--starts", "5", "--parts", str(parts)]) == 0
        out = capsys.readouterr().out
        assert "winner:" in out
        assert parts.exists()

    def test_portfolio_bad_method(self, hgr_file):
        with pytest.raises(ValueError):
            main(["portfolio", hgr_file, "--methods", "quantum"])
