"""Crash-recovery, integrity, and failover chaos for the partition daemon.

Real daemon subprocesses, real SIGKILLs.  The contract under test (the
PR's acceptance scenario, end to end):

1. **warm restart** — cache entries persisted under ``--state-dir``
   before a SIGKILL are served after restart, byte-identical, without
   re-execution;
2. **quarantine carryover** — a key quarantined before the kill is
   still answered ``503 Quarantined`` by the restarted daemon until its
   cooldown (which kept counting through the downtime) elapses;
3. **integrity** — a bit-flip injected via the ``server.verify`` chaos
   site into result bytes is caught by the boundary verify gate: typed
   ``IntegrityError`` 500, ``verify_failures`` counted, nothing corrupt
   cached, persisted, or served (persisted-record corruption is the
   unit half, ``tests/test_persist.py``);
4. **failover** — a two-endpoint :class:`ServiceClient` completes its
   workload across a daemon kill with no duplicated execution.

Plus the ``serve --autorestart`` watchdog (restart-on-SIGKILL with
state recovery, crash-loop give-up) and the ``soak --json`` /
``bench --verify`` operator surfaces.

Run with ``-m chaos`` (the CI tier-1 job deselects these; the server
recovery CI leg runs them).
"""

from __future__ import annotations

import json
import os
import signal
import socket as socket_module
import subprocess
import sys
import time

import pytest

from repro import obs
from repro.cli import main as cli_main
from repro.core.hypergraph import Hypergraph
from repro.runtime import faults
from repro.server import (
    PartitionService,
    ServiceClient,
    ServiceConfig,
    ServiceResponseError,
)

pytestmark = pytest.mark.chaos

_NEEDS_AF_UNIX = pytest.mark.skipif(
    not hasattr(socket_module, "AF_UNIX"),
    reason="AF_UNIX sockets are not available on this platform",
)


@pytest.fixture(autouse=True)
def _clean_slate():
    """No fault config or obs state leaks in either direction."""
    faults.configure(None)
    obs.disable()
    obs.registry().clear()
    yield
    faults.configure(None)
    obs.disable()
    obs.registry().clear()


@pytest.fixture
def h() -> Hypergraph:
    graph = Hypergraph(vertices=range(10))
    for i in range(9):
        graph.add_edge([i, i + 1], name=f"c{i}")
    graph.add_edge([0, 5], name="x0")
    graph.add_edge([2, 7], name="x1")
    return graph


def _canonical(result: dict) -> bytes:
    return json.dumps(result, sort_keys=True, separators=(",", ":")).encode()


def _spawn(socket_path: str, *extra_args: str, faults_spec: str | None = None):
    """One daemon subprocess on ``socket_path``; returns it banner-ready."""
    env = dict(os.environ, PYTHONPATH="src")
    if faults_spec is not None:
        env["REPRO_FAULTS"] = faults_spec
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--socket",
            socket_path,
            "--workers",
            "1",
            "--max-retries",
            "0",
            "--batch-window",
            "0",
            *extra_args,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    banner = proc.stdout.readline().strip()
    assert banner == f"serving on unix:{socket_path}", banner
    return proc


def _stop(proc) -> None:
    if proc.poll() is None:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=15)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=15)


def _client(socket_path: str, **kwargs) -> ServiceClient:
    kwargs.setdefault("timeout", 60.0)
    kwargs.setdefault("max_retries", 0)
    client = ServiceClient(socket_path=socket_path, **kwargs)
    client.wait_ready(timeout=15.0)
    return client


@_NEEDS_AF_UNIX
class TestCrashRecovery:
    def test_cache_and_quarantine_survive_sigkill(self, tmp_path, h):
        """Acceptance clauses 1 + 2 across two SIGKILLs.

        Generation A executes and persists a result, then dies hard.
        Generation B (every pool execution killed by an armed fault)
        proves the rehydrated entry serves as a warm hit without
        touching the pool, poisons a second key into quarantine, and
        dies hard too.  Generation C (faults off) still serves the warm
        hit byte-identically, still quarantines the poisoned key, and
        finally admits the half-open probe once the cooldown — which
        spanned two crashes — elapses.
        """
        socket_path = str(tmp_path / "svc.sock")
        state_args = (
            "--state-dir", str(tmp_path / "state"),
            "--breaker-threshold", "1",
            "--breaker-cooldown", "8.0",
        )

        # --- generation A: plant a durable cache entry, die hard.
        proc = _spawn(socket_path, *state_args)
        try:
            client = _client(socket_path)
            baseline = client.partition(h, engine="fm", settings={"seed": 0})
            assert baseline["served"]["cache"] == "miss"
        finally:
            proc.kill()
            proc.wait(timeout=15)

        # --- generation B: all executions die; the warm hit must not
        # care, and one poisoned key must trip the breaker durably.
        proc = _spawn(
            socket_path, *state_args, faults_spec="server.request=kill:1"
        )
        poisoned_at = None
        try:
            client = _client(socket_path)
            warm = client.partition(h, engine="fm", settings={"seed": 0})
            assert warm["served"]["cache"] == "hit"
            assert _canonical(warm["result"]) == _canonical(baseline["result"])

            with pytest.raises(ServiceResponseError) as excinfo:
                client.partition(h, engine="fm", settings={"seed": 1})
            assert excinfo.value.error_type == "WorkerCrashed"
            poisoned_at = time.monotonic()
            with pytest.raises(ServiceResponseError) as excinfo:
                client.partition(h, engine="fm", settings={"seed": 1})
            assert excinfo.value.status == 503
            assert excinfo.value.error_type == "Quarantined"
        finally:
            proc.kill()
            proc.wait(timeout=15)

        # --- generation C: no faults; recovery must carry both halves.
        proc = _spawn(socket_path, *state_args)
        try:
            client = _client(socket_path)
            persist = client.metrics()["persist"]
            assert persist["rehydrated_cache"] >= 1
            assert persist["rehydrated_breaker"] >= 1

            # Clause 1: the pre-crash entry is a byte-identical warm hit.
            warm = client.partition(h, engine="fm", settings={"seed": 0})
            assert warm["served"]["cache"] == "hit"
            assert _canonical(warm["result"]) == _canonical(baseline["result"])

            # Clause 2: the poisoned key is still cooling, not forgotten.
            with pytest.raises(ServiceResponseError) as excinfo:
                client.partition(h, engine="fm", settings={"seed": 1})
            assert excinfo.value.status == 503
            assert excinfo.value.error_type == "Quarantined"
            remaining = excinfo.value.retry_after or excinfo.value.error.get(
                "retry_after"
            )
            assert remaining is not None and 0 < remaining <= 8.0
            # The cooldown kept counting through the crash: what is left
            # is the original 8 s minus the downtime, not a fresh 8 s.
            downtime = time.monotonic() - poisoned_at
            assert remaining <= max(0.5, 8.0 - downtime + 1.5)

            # Once it elapses, the half-open probe runs clean and the
            # key earns its way back in.
            time.sleep(min(remaining + 0.4, 9.0))
            recovered = client.partition(h, engine="fm", settings={"seed": 1})
            assert recovered["served"]["cache"] == "miss"
            assert client.metrics()["breaker"]["recoveries"] >= 1
        finally:
            _stop(proc)

    def test_corrupt_results_are_detected_never_cached(self, tmp_path, h):
        """Acceptance clause 3 (live half): an armed ``server.verify``
        rule flips a digit in every result's canonical bytes; the
        boundary gate must turn each into a typed 500, count it, vote
        poison, and keep the corrupt bytes out of the cache and the
        state log."""
        socket_path = str(tmp_path / "svc.sock")
        state_args = (
            "--state-dir", str(tmp_path / "state"),
            "--breaker-threshold", "2",
            "--breaker-cooldown", "30.0",
        )
        proc = _spawn(
            socket_path, *state_args, faults_spec="server.verify=error:1"
        )
        try:
            client = _client(socket_path)
            for _attempt in range(2):
                with pytest.raises(ServiceResponseError) as excinfo:
                    client.partition(h, engine="fm", settings={"seed": 0})
                assert excinfo.value.status == 500
                assert excinfo.value.error_type == "IntegrityError"
                assert "verification" in str(excinfo.value)
            # Two integrity failures for one key: quarantined like any
            # other worker that reliably betrays its requests.
            with pytest.raises(ServiceResponseError) as excinfo:
                client.partition(h, engine="fm", settings={"seed": 0})
            assert excinfo.value.status == 503
            assert excinfo.value.error_type == "Quarantined"

            metrics = client.metrics()
            assert metrics["service"]["verify_failures"] == 2
            assert metrics["obs"]["counters"]["server.verify.failures"] == 2
            # Nothing corrupt was cached or persisted as a result.
            assert metrics["cache"]["insertions"] == 0
            assert metrics["persist"]["live"] <= 1  # breaker record only
            assert client.healthz()["status"] == "ok"
        finally:
            proc.kill()
            proc.wait(timeout=15)

        # A clean daemon on the same state dir starts and serves fine —
        # whatever the armed rule damaged in the persisted breaker
        # records was skipped or rehydrated, never fatal.
        proc = _spawn(socket_path, *state_args)
        try:
            client = _client(socket_path)
            fresh = client.partition(h, engine="fm", settings={"seed": 7})
            assert fresh["served"]["cache"] == "miss"
            assert client.healthz()["status"] == "ok"
        finally:
            _stop(proc)


@_NEEDS_AF_UNIX
class TestClientFailover:
    def test_workload_completes_across_a_kill(self, tmp_path, h):
        """Acceptance clause 4: a two-endpoint client finishes its
        workload across a SIGKILL of the active daemon, and the work
        done before the kill is not re-executed on the survivor."""
        path_a = str(tmp_path / "a.sock")
        path_b = str(tmp_path / "b.sock")
        proc_a = _spawn(path_a)
        proc_b = _spawn(path_b)
        try:
            client = ServiceClient(
                endpoints=[f"unix:{path_a}", f"unix:{path_b}"],
                timeout=60.0,
                max_retries=3,
            )
            client.wait_ready(timeout=15.0)
            assert client.active_endpoint == f"unix:{path_a}"

            for seed in range(3):
                response = client.partition(
                    h, engine="fm", settings={"seed": seed}
                )
                assert response["served"]["cache"] == "miss"

            proc_a.kill()
            proc_a.wait(timeout=15)

            for seed in range(3, 7):
                response = client.partition(
                    h, engine="fm", settings={"seed": seed}
                )
                assert response["served"]["cache"] == "miss"

            assert client.failovers == 1
            assert client.active_endpoint == f"unix:{path_b}"

            # No duplicated execution: the survivor ran exactly the
            # post-kill seeds, nothing from before the kill.
            metrics_b = ServiceClient(socket_path=path_b, timeout=30.0).metrics()
            assert metrics_b["service"]["executions"] == 4
            assert metrics_b["service"]["misses"] == 4
        finally:
            _stop(proc_a)
            _stop(proc_b)

    def test_execution_failures_never_move_to_a_sibling(self, h):
        """A 500-family failure may have executed (and here, did): the
        client must raise it, not replay the request on endpoint two —
        re-running crashing work is what the daemon-side breaker exists
        to punish."""
        svc1 = PartitionService(
            ServiceConfig(port=0, workers=1, max_retries=0, batch_window=0.0)
        ).start()
        svc2 = PartitionService(
            ServiceConfig(port=0, workers=1, max_retries=0, batch_window=0.0)
        ).start()
        try:
            client = ServiceClient(
                endpoints=[svc1.url, svc2.url], timeout=60.0, max_retries=3
            )
            client.wait_ready(timeout=10.0)
            faults.configure("server.request=kill:1", seed=19)
            with pytest.raises(ServiceResponseError) as excinfo:
                client.partition(h, engine="fm", settings={"seed": 0})
            assert excinfo.value.error_type == "WorkerCrashed"
            assert client.failovers == 0
            assert client.active_endpoint == svc1.url
            faults.configure(None)
            # The sibling never saw a data-plane request.
            assert svc2.metrics()["service"]["requests"] == 0
        finally:
            faults.configure(None)
            svc1.stop()
            svc2.stop()


@_NEEDS_AF_UNIX
class TestAutorestartWatchdog:
    def test_sigkilled_daemon_is_restarted_with_state(self, tmp_path, h):
        socket_path = str(tmp_path / "svc.sock")
        watchdog = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--autorestart",
                "--socket",
                socket_path,
                "--state-dir",
                str(tmp_path / "state"),
                "--workers",
                "1",
                "--max-retries",
                "0",
                "--batch-window",
                "0",
            ],
            env=dict(os.environ, PYTHONPATH="src"),
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            banner = watchdog.stdout.readline().strip()
            assert banner == f"serving on unix:{socket_path}", banner
            client = _client(socket_path)
            health = client.healthz()
            first_pid = health["pid"]
            assert first_pid != watchdog.pid  # supervised child, not the watchdog
            assert health["started_at"] is not None
            baseline = client.partition(h, engine="fm", settings={"seed": 0})
            assert baseline["served"]["cache"] == "miss"

            os.kill(first_pid, signal.SIGKILL)

            deadline = time.monotonic() + 30.0
            second_health = None
            while time.monotonic() < deadline:
                try:
                    probe = ServiceClient(
                        socket_path=socket_path, timeout=5.0, max_retries=0
                    )
                    second_health = probe.healthz()
                    if second_health["pid"] != first_pid:
                        break
                except Exception:
                    pass
                time.sleep(0.1)
            assert second_health is not None and second_health["pid"] != first_pid

            # The restarted daemon rehydrated the state the first one
            # persisted: the pre-kill result is a warm, identical hit.
            client = _client(socket_path)
            warm = client.partition(h, engine="fm", settings={"seed": 0})
            assert warm["served"]["cache"] == "hit"
            assert _canonical(warm["result"]) == _canonical(baseline["result"])
        finally:
            watchdog.send_signal(signal.SIGTERM)
            try:
                code = watchdog.wait(timeout=20)
            except subprocess.TimeoutExpired:
                watchdog.kill()
                code = watchdog.wait(timeout=15)
            assert code == 0

    def test_crash_loop_makes_the_watchdog_give_up(self, tmp_path):
        # A daemon that cannot bind its socket dies instantly, every
        # time; after --restart-limit fast crashes the watchdog must
        # exit 1 instead of flapping forever.
        missing_dir_socket = str(tmp_path / "no-such-dir" / "sub" / "svc.sock")
        watchdog = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--autorestart",
                "--restart-limit",
                "2",
                "--socket",
                missing_dir_socket,
                "--workers",
                "1",
            ],
            env=dict(os.environ, PYTHONPATH="src"),
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            code = watchdog.wait(timeout=60)
        except subprocess.TimeoutExpired:
            watchdog.kill()
            watchdog.wait(timeout=15)
            pytest.fail("watchdog kept restarting a crash-looping daemon")
        assert code == 1
        assert "giving up" in watchdog.stderr.read()


@_NEEDS_AF_UNIX
class TestOperatorSurfaces:
    def test_soak_json_summary_and_budget_gate(self, tmp_path, h, capsys):
        socket_path = str(tmp_path / "svc.sock")
        svc = PartitionService(
            ServiceConfig(socket_path=socket_path, workers=2, batch_window=0.0)
        ).start()
        try:
            base_args = [
                "soak",
                "--socket", socket_path,
                "--duration", "1.0",
                "--clients", "2",
                "--distinct", "2",
                "--vertices", "8",
                "--starts", "1",
                "--json",
            ]
            code = cli_main(base_args)
            summary = json.loads(capsys.readouterr().out)
            assert code == 0
            assert summary["soak"] == 1
            assert summary["ok"] is True
            assert summary["violations"] == []
            assert summary["report"]["total_requests"] > 0
            assert set(summary["budgets"]) == {
                "healthz_seconds",
                "latency_p95_seconds",
                "shed_fraction",
                "rss_mb",
            }

            # An impossible latency budget flips the verdict and the
            # exit code — the CI-gate contract.
            code = cli_main(base_args + ["--latency-budget", "0.000001"])
            summary = json.loads(capsys.readouterr().out)
            assert code == 1
            assert summary["ok"] is False
            assert any("p95" in v for v in summary["violations"])
        finally:
            svc.stop()

    def test_bench_verify_passthrough_counts(self):
        from repro.bench import QUICK_SUITE, run_bench

        svc = PartitionService(
            ServiceConfig(port=0, workers=2, batch_window=0.0)
        ).start()
        try:
            payload = run_bench(
                "verify-run",
                cases=QUICK_SUITE[:1],
                engines=("fm",),
                repeats=1,
                starts=3,
                server=svc.url,
                verify=True,
            )
            assert payload["settings"]["verify"] is True
            assert payload["verification"] == {"verified": 1, "failed": 0}
            assert all(e.get("verified") for e in payload["results"])
        finally:
            svc.stop()
