"""Tests for the incremental cut-evaluation engine (CutState)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.cutstate import (
    LEFT,
    RIGHT,
    CutState,
    initial_state,
    random_balanced_sides,
)
from repro.core.hypergraph import Hypergraph
from repro.core.partition import Bipartition
from repro.metrics.cut import cutsize as naive_cutsize
from tests.conftest import hypergraphs


@pytest.fixture
def square():
    return Hypergraph(
        edges={"e12": [1, 2], "e23": [2, 3], "e34": [3, 4], "e41": [4, 1]}
    )


class TestInitialization:
    def test_cutsize_matches_naive(self, square):
        state = CutState(square, {1, 2})
        assert state.cutsize == naive_cutsize(square, {1, 2}) == 2

    def test_side_bookkeeping(self, square):
        state = CutState(square, {1})
        assert state.side_sizes == [1, 3]
        assert state.side_weights == [1.0, 3.0]
        assert state.left == {1}
        assert state.right == {2, 3, 4}

    def test_unknown_left_vertex_rejected(self, square):
        with pytest.raises(ValueError):
            CutState(square, {99})

    def test_weighted_cutsize(self):
        h = Hypergraph()
        h.add_edge([1, 2], name="x", weight=5.0)
        state = CutState(h, {1})
        assert state.weighted_cutsize == 5.0


class TestGains:
    def test_gain_equals_delta(self, square):
        state = CutState(square, {1, 2})
        for v in square.vertices:
            before = state.cutsize
            predicted = state.gain(v)
            state.apply_move(v)
            assert before - state.cutsize == predicted
            state.apply_move(v)  # undo

    def test_weighted_gain(self):
        h = Hypergraph()
        h.add_edge([1, 2], name="x", weight=5.0)
        h.add_edge([1, 3], name="y", weight=1.0)
        state = CutState(h, {1})
        # moving 1 right uncuts both edges: weighted gain 6
        assert state.weighted_gain(1) == 6.0

    def test_swap_gain_exact(self, square):
        state = CutState(square, {1, 2})
        for a in (1, 2):
            for b in (3, 4):
                before = state.cutsize
                predicted = state.swap_gain(a, b)
                state.apply_swap(a, b)
                assert before - state.cutsize == predicted
                state.apply_swap(b, a)  # undo

    def test_swap_same_side_rejected(self, square):
        state = CutState(square, {1, 2})
        with pytest.raises(ValueError):
            state.swap_gain(1, 2)

    def test_swap_gain_with_shared_edge(self):
        """Shared-edge correction: swapping both ends of a 2-pin net."""
        h = Hypergraph(edges={"n": [1, 2]})
        state = CutState(h, {1})
        assert state.cutsize == 1
        # swapping 1 and 2 leaves the net cut: true delta 0,
        # but gain(1)+gain(2) would claim 2.
        assert state.swap_gain(1, 2) == 0


class TestMoves:
    def test_imbalance_tracking(self, square):
        state = CutState(square, {1, 2})
        assert state.imbalance() == 0
        state.apply_move(1)
        assert state.imbalance() == 2
        assert state.weight_imbalance() == 2.0

    def test_snapshot_restore(self, square):
        state = CutState(square, {1, 2})
        snap = state.snapshot()
        state.apply_move(1)
        state.apply_move(3)
        state.restore(snap)
        assert state.left == {1, 2}
        assert state.cutsize == 2
        state.validate()

    def test_to_bipartition(self, square):
        state = CutState(square, {1, 2})
        bp = state.to_bipartition()
        assert isinstance(bp, Bipartition)
        assert bp.cutsize == state.cutsize

    def test_validate_detects_drift(self, square):
        state = CutState(square, {1, 2})
        state.cutsize += 1  # corrupt
        with pytest.raises(AssertionError):
            state.validate()


class TestHelpers:
    def test_random_balanced_sides(self, square):
        left, right = random_balanced_sides(square, random.Random(0))
        assert abs(len(left) - len(right)) <= 1
        assert left | right == set(square.vertices)

    def test_initial_state_from_bipartition(self, square):
        bp = Bipartition(square, {1, 2}, {3, 4})
        state = initial_state(square, bp, random.Random(0))
        assert state.left == {1, 2}

    def test_initial_state_from_set(self, square):
        state = initial_state(square, frozenset({1}), random.Random(0))
        assert state.left == {1}

    def test_initial_state_random(self, square):
        state = initial_state(square, None, random.Random(0))
        assert state.imbalance() <= 1


class TestProperties:
    @settings(max_examples=40, deadline=None)
    @given(hypergraphs(), st.lists(st.integers(0, 13), min_size=1, max_size=40))
    def test_incremental_never_drifts(self, h, moves):
        rng = random.Random(0)
        left, _ = random_balanced_sides(h, rng)
        state = CutState(h, left)
        vertices = h.vertices
        for m in moves:
            state.apply_move(vertices[m % len(vertices)])
        state.validate()
        assert state.cutsize == naive_cutsize(h, state.left)
