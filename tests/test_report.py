"""Tests for the markdown report generators."""

import pytest

from repro.core.algorithm1 import algorithm1
from repro.core.hypergraph import Hypergraph
from repro.core.kway import recursive_bisection
from repro.core.partition import Bipartition
from repro.generators.netlists import clustered_netlist
from repro.placement import SlotGrid, mincut_place
from repro.report import (
    bipartition_report,
    full_report,
    hypergraph_summary,
    kway_report,
    placement_report,
)


@pytest.fixture
def netlist():
    return clustered_netlist(25, 45, "std_cell", seed=17)


class TestHypergraphSummary:
    def test_contains_counts(self, netlist):
        text = hypergraph_summary(netlist)
        assert "**25**" in text
        assert "**45**" in text
        assert "connected: yes" in text

    def test_histogram_rows(self, netlist):
        text = hypergraph_summary(netlist)
        hist = netlist.edge_size_histogram()
        for size, count in hist.items():
            assert f"| {size} | {count} |" in text


class TestBipartitionReport:
    def test_contains_cut_stats(self, netlist):
        bp = algorithm1(netlist, num_starts=10, seed=0).bipartition
        text = bipartition_report(bp)
        assert f"**{bp.cutsize}**" in text
        assert f"{len(bp.left)} / {len(bp.right)}" in text
        assert "quotient cut" in text

    def test_zero_cut(self):
        h = Hypergraph(edges={"a": [1, 2], "b": [3, 4]})
        bp = Bipartition(h, {1, 2}, {3, 4})
        text = bipartition_report(bp)
        assert "no nets cross" in text

    def test_custom_title(self, netlist):
        bp = algorithm1(netlist, seed=0).bipartition
        assert "## My cut" in bipartition_report(bp, title="My cut")


class TestKWayReport:
    def test_blocks_table(self, netlist):
        kp = recursive_bisection(netlist, 4, num_starts=3, seed=0)
        text = kway_report(kp)
        assert "k = **4**" in text
        assert text.count("\n| ") >= 5  # header + 4 block rows

    def test_objectives_present(self, netlist):
        kp = recursive_bisection(netlist, 3, num_starts=3, seed=0)
        text = kway_report(kp)
        assert "external degrees" in text
        assert "lambda - 1" in text


class TestPlacementReport:
    def test_wirelength_table(self, netlist):
        for v in netlist.vertices:
            netlist.set_vertex_weight(v, 1.0)
        result = mincut_place(netlist, SlotGrid(5, 5), seed=0)
        text = placement_report(result)
        for model in ("hpwl", "clique", "star", "mst"):
            assert f"| {model} |" in text
        assert "5 x 5" in text


class TestFullReport:
    def test_composition(self, netlist):
        bp = algorithm1(netlist, seed=0).bipartition
        text = full_report(bp, extra_sections=["## Extra\ncontent"])
        assert text.startswith("# Partitioning report")
        assert "## Netlist" in text
        assert "## Bipartition" in text
        assert "## Extra" in text
        assert text.endswith("\n")
