"""Tests for the instance generators: random, difficult, netlists, suite."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.validation import brute_force_min_cut
from repro.generators import (
    SUITE,
    TECHNOLOGY_PROFILES,
    clustered_netlist,
    difficult_cutsize,
    disconnected_instance,
    load_instance,
    planted_bisection,
    random_hypergraph,
    random_k_uniform_hypergraph,
    random_regular_graph,
)


class TestRandomHypergraph:
    def test_respects_bounds(self):
        h = random_hypergraph(50, 80, max_vertex_degree=3, max_edge_size=5, seed=0)
        assert h.num_vertices == 50
        assert h.max_vertex_degree <= 3
        assert h.max_edge_size <= 5

    def test_edge_target_met_when_capacity_allows(self):
        h = random_hypergraph(100, 50, max_vertex_degree=4, seed=0)
        assert h.num_edges == 50

    def test_capacity_exhaustion_stops_early(self):
        h = random_hypergraph(6, 1000, max_vertex_degree=2, max_edge_size=2, seed=0)
        assert h.num_edges <= 6  # at most n*d/2 edges

    def test_connect_flag(self):
        h = random_hypergraph(30, 60, seed=1, connect=True)
        assert h.is_connected()

    def test_deterministic(self):
        a = random_hypergraph(30, 40, seed=5)
        b = random_hypergraph(30, 40, seed=5)
        assert a == b

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(num_vertices=1, num_edges=1),
            dict(num_vertices=10, num_edges=-1),
            dict(num_vertices=10, num_edges=5, max_edge_size=1),
            dict(num_vertices=10, num_edges=5, max_vertex_degree=0),
        ],
    )
    def test_bad_args(self, kwargs):
        with pytest.raises(ValueError):
            random_hypergraph(**kwargs)


class TestKUniform:
    def test_sizes(self):
        h = random_k_uniform_hypergraph(20, 15, k=4, seed=0)
        assert h.num_edges == 15
        assert all(h.edge_size(e) == 4 for e in h.edge_names)

    def test_bad_k(self):
        with pytest.raises(ValueError):
            random_k_uniform_hypergraph(5, 3, k=1)
        with pytest.raises(ValueError):
            random_k_uniform_hypergraph(5, 3, k=6)


class TestRandomRegular:
    def test_degrees(self):
        g = random_regular_graph(20, 3, seed=0)
        assert all(g.degree(v) == 3 for v in g.nodes)
        assert g.num_edges == 30

    def test_odd_product_rejected(self):
        with pytest.raises(ValueError):
            random_regular_graph(5, 3)

    def test_degree_too_big(self):
        with pytest.raises(ValueError):
            random_regular_graph(4, 4)

    def test_simple_no_loops(self):
        g = random_regular_graph(30, 4, seed=2)
        for u, v in g.edges():
            assert u != v


class TestDifficult:
    def test_planted_cut_exact(self):
        inst = planted_bisection(60, 90, crossing_edges=3, seed=0)
        assert inst.planted_cutsize == 3
        assert inst.planted.cutsize == 3
        assert inst.planted.is_bisection()

    def test_edge_budget(self):
        inst = planted_bisection(60, 90, crossing_edges=3, seed=0)
        assert inst.hypergraph.num_edges <= 90
        assert inst.hypergraph.num_edges >= 80  # near target

    def test_planted_is_optimal_small(self):
        """On a small dense instance, the planted cut is the true optimum."""
        inst = planted_bisection(12, 30, crossing_edges=1, seed=4)
        best = brute_force_min_cut(inst.hypergraph, require_bisection=True)
        assert best.cutsize == 1

    def test_c_zero_disconnected(self):
        inst = disconnected_instance(40, 60, seed=0)
        assert inst.planted_cutsize == 0
        assert not inst.hypergraph.is_connected()
        comps = inst.hypergraph.connected_components()
        assert len(comps) == 2

    def test_halves_connected(self):
        inst = planted_bisection(40, 60, crossing_edges=2, seed=1)
        left = inst.hypergraph.induced(inst.planted.left)
        # drop planted edges restricted into the half
        names = [n for n in left.edge_names if not (isinstance(n, tuple) and n[0] == "planted")]
        assert left.restricted_to_edges(names).induced(inst.planted.left).is_connected()

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(num_vertices=3, num_edges=5, crossing_edges=1),
            dict(num_vertices=5, num_edges=5, crossing_edges=1),
            dict(num_vertices=10, num_edges=5, crossing_edges=6),
            dict(num_vertices=10, num_edges=5, crossing_edges=-1),
            dict(num_vertices=10, num_edges=5, crossing_edges=1, max_edge_size=1),
        ],
    )
    def test_bad_args(self, kwargs):
        with pytest.raises(ValueError):
            planted_bisection(**kwargs)

    def test_difficult_cutsize_sublinear(self):
        c100 = difficult_cutsize(100, 5)
        c10000 = difficult_cutsize(10000, 5)
        assert 1 <= c100 < c10000
        assert c10000 < 10000 ** (1 - 1 / 5)  # strictly below n^(1-1/d)

    def test_difficult_cutsize_tiny_n(self):
        assert difficult_cutsize(2, 5) == 1


class TestNetlists:
    def test_counts(self):
        h = clustered_netlist(103, 211, "pcb", seed=0)
        assert h.num_vertices == 103
        assert h.num_edges == 211

    def test_every_net_at_least_two_pins(self):
        h = clustered_netlist(80, 160, "hybrid", seed=1)
        assert all(h.edge_size(e) >= 2 for e in h.edge_names)

    def test_profiles_differ_in_tail(self):
        """PCB netlists have more large nets than std-cell ones."""
        rng = random.Random(7)
        pcb = clustered_netlist(200, 400, "pcb", seed=rng)
        std = clustered_netlist(200, 400, "std_cell", seed=rng)
        pcb_large = sum(1 for e in pcb.edge_names if pcb.edge_size(e) >= 8)
        std_large = sum(1 for e in std.edge_names if std.edge_size(e) >= 8)
        assert pcb_large > std_large

    def test_std_cell_weights_track_degree(self):
        h = clustered_netlist(60, 120, "std_cell", seed=0)
        heavy = max(h.vertices, key=h.vertex_weight)
        light = min(h.vertices, key=h.vertex_weight)
        assert h.vertex_degree(heavy) >= h.vertex_degree(light)

    def test_pcb_weights_uniform(self):
        h = clustered_netlist(60, 120, "pcb", seed=0)
        assert all(h.vertex_weight(v) == 1.0 for v in h.vertices)

    def test_connected_by_default(self):
        h = clustered_netlist(300, 420, "std_cell", seed=5)
        assert h.is_connected()

    def test_ensure_connected_false_may_leave_islands(self):
        h = clustered_netlist(300, 420, "std_cell", seed=5, ensure_connected=False)
        assert h.num_edges == 420  # counts always honoured

    def test_unknown_technology(self):
        with pytest.raises(ValueError):
            clustered_netlist(50, 80, "quantum")

    def test_custom_profile(self):
        from repro.generators.netlists import TechnologyProfile

        profile = TechnologyProfile(name="custom", net_size_weights={2: 1})
        h = clustered_netlist(30, 50, profile, seed=0, ensure_connected=False)
        assert all(h.edge_size(e) == 2 for e in h.edge_names)

    def test_bad_sizes(self):
        with pytest.raises(ValueError):
            clustered_netlist(2, 10)
        with pytest.raises(ValueError):
            clustered_netlist(10, 0)

    def test_clustering_shrinks_cut(self):
        """Clustered netlists cut far below random hypergraphs of the
        same size — the structural property the generator exists for."""
        from repro.baselines.random_cut import random_cut
        from repro.core.algorithm1 import algorithm1

        clustered = clustered_netlist(120, 200, "std_cell", seed=3)
        cut = algorithm1(clustered, num_starts=10, seed=0).cutsize
        rand = random_cut(clustered, num_starts=10, seed=0).cutsize
        assert cut < 0.8 * rand  # clustering leaves a much cheaper cut


class TestSuite:
    def test_all_instances_load_with_paper_sizes(self):
        for name, recipe in SUITE.items():
            h, loaded_recipe, gt = load_instance(name)
            assert loaded_recipe is recipe
            assert h.num_vertices == recipe.num_modules
            assert h.num_edges <= recipe.num_signals
            assert h.num_edges >= recipe.num_signals - 10  # capacity slack
            if recipe.kind == "difficult":
                assert gt is not None
                assert gt.planted_cutsize == recipe.planted_cutsize
            else:
                assert gt is None

    def test_expected_names(self):
        assert set(SUITE) == {
            "Bd1", "Bd2", "Bd3", "IC1", "IC2", "Diff1", "Diff2", "Diff3",
        }

    def test_unknown_instance(self):
        with pytest.raises(ValueError):
            load_instance("Bd99")

    def test_instances_reproducible(self):
        a, _, _ = load_instance("Bd1")
        b, _, _ = load_instance("Bd1")
        assert a == b


class TestProfilesRegistry:
    def test_four_technologies(self):
        assert set(TECHNOLOGY_PROFILES) == {"pcb", "std_cell", "gate_array", "hybrid"}

    def test_net_size_weights_positive(self):
        for profile in TECHNOLOGY_PROFILES.values():
            assert all(w > 0 for w in profile.net_size_weights.values())
            assert all(s >= 2 for s in profile.net_size_weights)
