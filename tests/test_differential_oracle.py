"""Differential tests against the exact oracles on small instances.

Two lower bounds that no heuristic may beat, swept across ≥20 seeds on
instances of at most 10 nets:

* Algorithm I's cutsize is never below the branch-and-bound optimum
  (both computed under the same "both sides non-empty" constraint);
* Complete-Cut's greedy loser count is never below the König-matching
  optimum on the boundary graph it completes (and is within one of it on
  a connected boundary graph — the paper's theorem).
"""

from __future__ import annotations

import random

import pytest

from repro.core.algorithm1 import algorithm1, run_single_start
from repro.core.complete_cut import (
    complete_cut,
    optimal_completion_losers,
    optimal_completion_size,
)
from repro.core.exact import branch_and_bound_min_cut
from repro.core.hypergraph import Hypergraph
from repro.core.intersection import intersection_graph

NUM_SEEDS = 24


def tiny_instance(seed: int) -> Hypergraph:
    """Connected hypergraph with <= 10 nets and <= 10 modules."""
    rng = random.Random(seed)
    n = rng.randint(4, 10)
    h = Hypergraph(vertices=range(n))
    for i in range(n - 1):  # spanning chain keeps it connected
        h.add_edge([i, i + 1])
    extra = rng.randint(0, 10 - (n - 1)) if n - 1 < 10 else 0
    for _ in range(extra):
        size = rng.randint(2, min(4, n))
        h.add_edge(rng.sample(range(n), size))
    assert h.num_edges <= 10
    return h


class TestAlgorithm1NeverBeatsExact:
    @pytest.mark.parametrize("seed", range(NUM_SEEDS))
    def test_cutsize_at_least_optimum(self, seed):
        h = tiny_instance(seed)
        optimum = branch_and_bound_min_cut(h).cutsize
        result = algorithm1(h, num_starts=6, seed=seed, edge_size_threshold=None)
        assert result.cutsize >= optimum
        # Sanity: the oracle itself reports an honest cut.
        assert optimum >= 0

    @pytest.mark.parametrize("seed", range(NUM_SEEDS))
    def test_every_single_start_at_least_optimum(self, seed):
        h = tiny_instance(seed)
        optimum = branch_and_bound_min_cut(h).cutsize
        result = algorithm1(h, num_starts=6, seed=seed, edge_size_threshold=None)
        for record in result.starts:
            assert record.cutsize >= optimum

    def test_heuristic_finds_optimum_somewhere(self):
        """Not a guarantee — but across the sweep the heuristic should hit
        the exact optimum on at least a handful of these tiny instances;
        zero hits would mean the differential harness is wired wrong."""
        hits = 0
        for seed in range(NUM_SEEDS):
            h = tiny_instance(seed)
            optimum = branch_and_bound_min_cut(h).cutsize
            result = algorithm1(h, num_starts=6, seed=seed, edge_size_threshold=None)
            hits += result.cutsize == optimum
        assert hits >= NUM_SEEDS // 3


class TestCompleteCutKonigBound:
    def boundaries(self):
        """Boundary graphs harvested from real single-start runs."""
        out = []
        for seed in range(NUM_SEEDS):
            h = tiny_instance(seed)
            dual = intersection_graph(h)
            if dual.graph.num_nodes < 2:
                continue
            trace = run_single_start(dual, h, random.Random(seed))
            if not trace.boundary.is_trivial():
                out.append((seed, trace.boundary))
        assert len(out) >= 20
        return out

    def test_greedy_never_below_konig_optimum(self):
        for seed, bg in self.boundaries():
            completion = complete_cut(bg, rng=random.Random(seed))
            optimum = optimal_completion_size(bg)
            assert completion.num_losers >= optimum, f"seed {seed}"

    def test_within_one_of_optimum_on_connected_boundary(self):
        """The paper's Theorem: greedy is within 1 of optimal when G' is
        connected.  Our harvested boundary graphs may be disconnected, so
        restrict to the connected ones."""
        checked = 0
        for seed, bg in self.boundaries():
            g = bg.graph
            start = next(iter(bg.nodes))
            reachable = {g.label_of(i) for i in g.bfs_order_from(g.index_of(start))}
            if reachable != set(bg.nodes):
                continue
            completion = complete_cut(bg, rng=random.Random(seed))
            assert completion.num_losers <= optimal_completion_size(bg) + 1
            checked += 1
        assert checked >= 5

    def test_konig_losers_form_a_vertex_cover(self):
        """The exact loser set must cover every boundary edge — otherwise
        some hyperedge would be forced to cross without being counted."""
        for _, bg in self.boundaries():
            losers = optimal_completion_losers(bg)
            for u in bg.left:
                for w in bg.graph.neighbors_view(u):
                    assert u in losers or w in losers

    def test_algorithm1_losers_never_below_konig(self):
        """End-to-end: the completion inside a full single start obeys the
        bound as well (same boundary graph, same invariant)."""
        for seed in range(NUM_SEEDS):
            h = tiny_instance(seed)
            dual = intersection_graph(h)
            if dual.graph.num_nodes < 2:
                continue
            trace = run_single_start(dual, h, random.Random(seed))
            bound = optimal_completion_size(trace.boundary)
            assert trace.completion.num_losers >= bound
