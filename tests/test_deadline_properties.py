"""Property tests for deadline degradation (hypothesis).

The deadline contract across every entry point is the same three
clauses, and these tests state them as properties over random instances
and budgets rather than hand-picked examples:

1. **Validity is unconditional** — whatever the budget, a k-way call
   returns a true partition of the vertex set and a placement call
   returns one module per slot.  (``KWayPartition.__post_init__``
   enforces the former, so *constructing* the result is the check.)
2. **``degraded`` iff the budget was exceeded** — a generous budget
   yields ``degraded=False``; an already-expired budget, on an instance
   with more than one unit of work, yields ``degraded=True`` with a
   reason string.
3. **Zero-deadline still returns the first unit of work** — expired
   budgets degrade, they do not raise or return empty results.

Instances are kept small (hypothesis runs dozens of examples) and the
shrunk counterexamples stay readable.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.kway import recursive_bisection
from repro.core.kway_refine import refine_kway
from repro.generators import random_hypergraph
from repro.placement.annealing_placement import PlacementSchedule, annealing_place
from repro.placement.mincut_placement import mincut_place
from repro.placement.quadratic_placement import quadratic_place

#: Far beyond anything these tiny instances need; "budget not exceeded".
GENEROUS = 300.0

SETTINGS = settings(max_examples=20, deadline=None)


def small_instance(n: int, seed: int):
    return random_hypergraph(n, int(1.5 * n), seed=seed, connect=True)


def assert_valid_placement(h, result):
    assert set(result.positions) == set(h.vertices)
    assert len(set(result.positions.values())) == h.num_vertices
    for row, col in result.positions.values():
        assert 0 <= row < result.grid.rows
        assert 0 <= col < result.grid.cols


# ----------------------------------------------------------------------
# k-way recursive bisection


class TestKWayDeadlineProperties:
    @SETTINGS
    @given(
        n=st.integers(min_value=12, max_value=40),
        k=st.integers(min_value=3, max_value=6),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_zero_deadline_degrades_but_stays_valid(self, n, k, seed):
        h = small_instance(n, seed)
        partition = recursive_bisection(h, k, num_starts=2, seed=seed, deadline=0.0)
        # Construction validated the blocks; k >= 3 needs >= 2 engine
        # bisections, so an expired budget always skips at least one.
        assert partition.k == k
        assert partition.degraded is True
        assert "deadline" in partition.degrade_reason

    @SETTINGS
    @given(
        n=st.integers(min_value=12, max_value=40),
        k=st.integers(min_value=2, max_value=6),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_generous_deadline_never_degrades(self, n, k, seed):
        h = small_instance(n, seed)
        partition = recursive_bisection(h, k, num_starts=2, seed=seed, deadline=GENEROUS)
        assert partition.degraded is False
        assert partition.degrade_reason is None
        unconstrained = recursive_bisection(h, k, num_starts=2, seed=seed)
        assert partition.blocks == unconstrained.blocks

    @SETTINGS
    @given(
        n=st.integers(min_value=12, max_value=30),
        seed=st.integers(min_value=0, max_value=10_000),
        budget=st.floats(min_value=0.0, max_value=0.02, allow_nan=False),
    )
    def test_arbitrary_budgets_always_yield_valid_partitions(self, n, seed, budget):
        h = small_instance(n, seed)
        partition = recursive_bisection(h, 4, num_starts=2, seed=seed, deadline=budget)
        assert partition.k == 4
        assert isinstance(partition.degraded, bool)
        if partition.degraded:
            assert partition.degrade_reason


class TestRefineDeadlineProperties:
    @SETTINGS
    @given(
        n=st.integers(min_value=12, max_value=30),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_zero_deadline_refine_is_valid_and_never_worse(self, n, seed):
        h = small_instance(n, seed)
        partition = recursive_bisection(h, 4, num_starts=2, seed=seed)
        refined = refine_kway(partition, sweeps=2, seed=seed, deadline=0.0)
        assert refined.k == partition.k
        assert refined.connectivity <= partition.connectivity
        # With >= 2 interacting pairs the budget expires mid-sweep; with
        # fewer the sweep may finish inside its first unit of work — the
        # flag must then stay False (degraded iff budget exceeded).
        if refined.degraded:
            assert "deadline" in refined.degrade_reason

    @SETTINGS
    @given(
        n=st.integers(min_value=12, max_value=30),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_generous_deadline_refine_never_degrades(self, n, seed):
        h = small_instance(n, seed)
        partition = recursive_bisection(h, 4, num_starts=2, seed=seed)
        refined = refine_kway(partition, sweeps=2, seed=seed, deadline=GENEROUS)
        assert refined.degraded is False
        assert refined.degrade_reason is None


# ----------------------------------------------------------------------
# Placement engines


class TestPlacementDeadlineProperties:
    @SETTINGS
    @given(
        n=st.integers(min_value=6, max_value=30),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_mincut_zero_deadline_degrades_but_places_everything(self, n, seed):
        h = small_instance(n, seed)
        result = mincut_place(h, seed=seed, deadline=0.0)
        assert_valid_placement(h, result)
        # n >= 6 needs more than one bisection, so the expired budget
        # always skips at least one region.
        assert result.degraded is True
        assert "deadline" in result.degrade_reason

    @SETTINGS
    @given(
        n=st.integers(min_value=4, max_value=25),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_mincut_generous_deadline_never_degrades(self, n, seed):
        h = small_instance(n, seed)
        result = mincut_place(h, seed=seed, deadline=GENEROUS)
        assert_valid_placement(h, result)
        assert result.degraded is False
        unconstrained = mincut_place(h, seed=seed)
        assert result.positions == unconstrained.positions

    @SETTINGS
    @given(
        n=st.integers(min_value=4, max_value=25),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_annealing_zero_deadline_degrades_but_places_everything(self, n, seed):
        h = small_instance(n, seed)
        schedule = PlacementSchedule(
            initial_temperature=5.0, moves_per_temperature=2_000
        )
        result = annealing_place(h, schedule=schedule, seed=seed, deadline=0.0)
        assert_valid_placement(h, result)
        # moves_per_temperature exceeds the check stride, so the expired
        # budget is always noticed inside the first temperature step.
        assert result.degraded is True
        assert "deadline" in result.degrade_reason

    @SETTINGS
    @given(
        n=st.integers(min_value=4, max_value=20),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_annealing_generous_deadline_never_degrades(self, n, seed):
        h = small_instance(n, seed)
        schedule = PlacementSchedule(
            initial_temperature=1.0, moves_per_temperature=50, min_temperature=0.5
        )
        result = annealing_place(h, schedule=schedule, seed=seed, deadline=GENEROUS)
        assert_valid_placement(h, result)
        assert result.degraded is False

    @SETTINGS
    @given(
        n=st.integers(min_value=4, max_value=30),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_quadratic_zero_deadline_falls_back_deterministically(self, n, seed):
        h = small_instance(n, seed)
        result = quadratic_place(h, deadline=0.0)
        assert_valid_placement(h, result)
        assert result.degraded is True
        assert "deadline" in result.degrade_reason
        again = quadratic_place(h, deadline=0.0)
        assert result.positions == again.positions

    @SETTINGS
    @given(
        n=st.integers(min_value=4, max_value=30),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_quadratic_generous_deadline_never_degrades(self, n, seed):
        h = small_instance(n, seed)
        result = quadratic_place(h, deadline=GENEROUS)
        assert_valid_placement(h, result)
        assert result.degraded is False
        unconstrained = quadratic_place(h)
        assert result.positions == unconstrained.positions
