"""Property, metamorphic, and fault-injection suite for the flow stack.

Covers the contracts the oracle suite cannot: max-flow/min-cut duality
on weighted instances, invariance under module relabeling and signal
reordering, same-seed determinism, deadline degradation semantics, the
engine-registry validation surface (including the ``ALL_ENGINES`` /
``DEFAULT_ENGINES`` aliasing regression), the service settings
fingerprint, and a chaos case killing a worker inside ``flow.solve``.
"""

from __future__ import annotations

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.bench import BenchError, run_bench
from repro.core.hypergraph import Hypergraph
from repro.core.partition import Bipartition
from repro.engines import ALL_ENGINES, DEFAULT_ENGINES, REFINERS, EngineError, run_engine
from repro.flow import lawler_network, max_flow, refine_flow, solve_corridor
from repro.io.json_io import hypergraph_to_payload
from repro.portfolio import best_partition
from repro.runtime import Deadline, DeadlineExpired, faults
from repro.server.protocol import RequestError, parse_request
from tests.conftest import hypergraphs

_EPS = 1e-9


@pytest.fixture(autouse=True)
def _clean_slate():
    faults.configure(None)
    obs.disable()
    obs.registry().clear()
    yield
    faults.configure(None)
    obs.disable()
    obs.registry().clear()


def _weighted_instance(seed: int) -> Hypergraph:
    """Weights are multiples of 0.5, so all flow sums are float-exact."""
    rng = random.Random(seed)
    n = rng.randint(4, 12)
    h = Hypergraph(vertices=range(n))
    for v in range(n):
        h.set_vertex_weight(v, rng.choice([0.5, 1.0, 2.0, 3.0]))
    for _ in range(rng.randint(n, 2 * n)):
        size = rng.randint(2, min(4, n))
        h.add_edge(rng.sample(range(n), size), weight=rng.choice([0.5, 1.0, 1.5, 2.0]))
    return h


def _global_min_cut_value(h: Hypergraph) -> float:
    verts = list(h.vertices)
    s = verts[0]
    return min(
        solve_corridor(h, [s], [t], [v for v in verts if v != s and v != t]).cut_weight
        for t in verts[1:]
    )


class TestDuality:
    """Max-flow value == weight of the cut the solver returns."""

    @pytest.mark.parametrize("seed", range(16))
    def test_flow_value_equals_returned_cut_weight(self, seed):
        h = _weighted_instance(seed)
        verts = list(h.vertices)
        sol = solve_corridor(h, [verts[0]], [verts[-1]], verts[1:-1])
        realized = Bipartition(h, sol.left, sol.right)
        assert realized.weighted_cutsize == sol.flow_value + sol.base_cut_weight
        assert realized.weighted_cutsize == sol.cut_weight

    @pytest.mark.parametrize("seed", range(16))
    def test_max_flow_lower_bounds_every_corridor_cut(self, seed):
        """Weak duality: no corridor assignment can beat the flow value."""
        h = _weighted_instance(seed)
        verts = list(h.vertices)
        sol = solve_corridor(h, [verts[0]], [verts[-1]], verts[1:-1])
        rng = random.Random(seed + 99)
        for _ in range(25):
            left = {verts[0]} | {v for v in verts[1:-1] if rng.random() < 0.5}
            right = set(verts) - left
            cut = Bipartition(h, left, right).weighted_cutsize
            assert cut >= sol.cut_weight - _EPS


class TestMetamorphic:
    """The min-cut value is a graph invariant: renaming modules or
    re-adding signals in a different order must not move it."""

    @pytest.mark.parametrize("seed", range(12))
    def test_invariant_under_label_permutation(self, seed):
        h = _weighted_instance(seed)
        rng = random.Random(seed + 500)
        verts = list(h.vertices)
        perm = list(range(len(verts)))
        rng.shuffle(perm)
        relabel = {v: f"m{perm[i]}" for i, v in enumerate(verts)}

        h2 = Hypergraph()
        for v in verts:
            h2.add_vertex(relabel[v], weight=h.vertex_weight(v))
        for e in h.edge_names:
            h2.add_edge(
                [relabel[v] for v in h.edge_members(e)], weight=h.edge_weight(e)
            )
        assert _global_min_cut_value(h2) == _global_min_cut_value(h)

    @pytest.mark.parametrize("seed", range(12))
    def test_invariant_under_signal_order_shuffle(self, seed):
        h = _weighted_instance(seed)
        rng = random.Random(seed + 700)
        edges = list(h.edge_names)
        rng.shuffle(edges)

        h2 = Hypergraph()
        for v in h.vertices:
            h2.add_vertex(v, weight=h.vertex_weight(v))
        for e in edges:
            h2.add_edge(h.edge_members(e), weight=h.edge_weight(e))
        assert _global_min_cut_value(h2) == _global_min_cut_value(h)


class TestDeterminism:
    """Same inputs, same process -> byte-identical answers."""

    @pytest.mark.parametrize("seed", range(8))
    def test_solve_corridor_is_deterministic(self, seed):
        h = _weighted_instance(seed)
        verts = list(h.vertices)
        first = solve_corridor(h, [verts[0]], [verts[-1]], verts[1:-1])
        second = solve_corridor(h, [verts[0]], [verts[-1]], verts[1:-1])
        assert first.left == second.left
        assert first.right == second.right
        assert first.flow_value == second.flow_value

    @pytest.mark.parametrize("seed", range(8))
    def test_refine_flow_is_deterministic(self, seed):
        h = _weighted_instance(seed)
        verts = list(h.vertices)
        part = Bipartition(h, verts[: len(verts) // 2], verts[len(verts) // 2 :])
        a = refine_flow(h, part, corridor_radius=2, balance_tolerance=0.1)
        b = refine_flow(h, part, corridor_radius=2, balance_tolerance=0.1)
        assert frozenset(a.bipartition.left) == frozenset(b.bipartition.left)
        assert a.cut_trajectory == b.cut_trajectory
        assert a.corridor_sizes == b.corridor_sizes

    def test_flow_engine_same_seed_same_cut(self):
        h = _weighted_instance(3)
        one, _ = run_engine("flow", h, seed=42, starts=4)
        two, _ = run_engine("flow", h, seed=42, starts=4)
        assert one.cutsize == two.cutsize
        assert frozenset(one.left) == frozenset(two.left)


class TestDeadlineDegradation:
    """An expired deadline degrades, never corrupts."""

    def test_refine_flow_returns_untouched_input_flagged_degraded(self):
        h = _weighted_instance(1)
        verts = list(h.vertices)
        part = Bipartition(h, verts[: len(verts) // 2], verts[len(verts) // 2 :])
        res = refine_flow(h, part, deadline=Deadline.after(0.0))
        assert res.degraded
        assert res.degrade_reason
        assert frozenset(res.bipartition.left) == frozenset(part.left)
        assert frozenset(res.bipartition.right) == frozenset(part.right)
        assert res.accepted_rounds == 0

    def test_max_flow_raises_typed_expiry(self):
        h = _weighted_instance(2)
        verts = list(h.vertices)
        net = lawler_network(h, [verts[0]], [verts[-1]], verts[1:-1])
        with pytest.raises(DeadlineExpired):
            max_flow(net, deadline=Deadline.after(0.0))

    def test_engine_flow_with_expired_deadline_is_degraded_not_broken(self):
        h = _weighted_instance(4)
        bp, extras = run_engine("flow", h, seed=0, starts=2, deadline=Deadline.after(0.0))
        assert extras["degraded"]
        assert bp.cutsize >= 0  # still a valid bipartition, best-effort


class TestEngineRegistry:
    """The ``ALL_ENGINES``/``DEFAULT_ENGINES`` aliasing regression and
    the typed-validation surface around engine and refiner names."""

    def test_registries_are_distinct_objects(self):
        # Regression: these used to alias one tuple, so appending to the
        # "all" list silently widened the default sweep.
        assert ALL_ENGINES is not DEFAULT_ENGINES
        assert "flow" in DEFAULT_ENGINES
        assert "flow" in ALL_ENGINES
        assert set(DEFAULT_ENGINES) <= set(ALL_ENGINES)

    def test_bench_rejects_unknown_engine_with_typed_error(self):
        with pytest.raises(BenchError, match="unknown engine"):
            run_bench("x", engines=("algorithm1", "flwo"), repeats=1)

    def test_bench_rejects_unknown_refiner_with_typed_error(self):
        with pytest.raises(BenchError, match="refiner"):
            run_bench("x", engines=("algorithm1",), repeats=1, refine="flwo")

    def test_run_engine_rejects_unknown_engine(self):
        h = _weighted_instance(0)
        with pytest.raises(EngineError):
            run_engine("flwo", h, seed=0, starts=1)

    def test_run_engine_rejects_unknown_refiner(self):
        h = _weighted_instance(0)
        with pytest.raises(EngineError):
            run_engine("algorithm1", h, seed=0, starts=1, refine="flwo")

    def test_portfolio_rejects_unknown_refiner(self):
        h = _weighted_instance(0)
        with pytest.raises(ValueError, match="refiner"):
            best_partition(h, methods=("algorithm1",), refine="flwo")

    @given(hypergraphs(min_vertices=4, max_vertices=10))
    @settings(max_examples=15, deadline=None)
    def test_refined_engine_never_worse_than_unrefined(self, h):
        plain, _ = run_engine("algorithm1", h, seed=5, starts=3)
        refined, extras = run_engine("algorithm1", h, seed=5, starts=3, refine="flow")
        assert refined.cutsize <= plain.cutsize
        assert extras["refine"] == "flow"


class TestServiceFingerprint:
    """``refine`` is part of the partition settings fingerprint, so a
    refined result can never be served from an unrefined cache entry."""

    def _raw(self, settings_dict):
        h = _weighted_instance(5)
        body = {
            "op": "partition",
            "engine": "algorithm1",
            "hypergraph": hypergraph_to_payload(h),
            "settings": settings_dict,
        }
        return json.dumps(body).encode()

    def test_refine_defaults_to_none_and_normalizes(self):
        request = parse_request(self._raw({"seed": 0}))
        assert request.settings["refine"] is None
        refined = parse_request(self._raw({"seed": 0, "refine": "flow"}))
        assert refined.settings["refine"] == "flow"

    def test_refine_changes_the_fingerprint(self):
        plain = parse_request(self._raw({"seed": 0}))
        refined = parse_request(self._raw({"seed": 0, "refine": "flow"}))
        assert plain.fingerprint != refined.fingerprint
        assert plain.cache_key != refined.cache_key

    def test_unknown_refiner_is_a_typed_request_error(self):
        with pytest.raises(RequestError, match="refine"):
            parse_request(self._raw({"seed": 0, "refine": "flwo"}))

    def test_flow_engine_accepted_by_protocol(self):
        h = _weighted_instance(5)
        body = {
            "op": "partition",
            "engine": "flow",
            "hypergraph": hypergraph_to_payload(h),
            "settings": {"seed": 1},
        }
        request = parse_request(json.dumps(body).encode())
        assert request.engine == "flow"


@pytest.mark.chaos
class TestFlowChaos:
    """A worker killed inside ``flow.solve`` becomes a typed failed
    entry; the daemon survives and keeps serving other engines."""

    def test_kill_inside_flow_solve_daemon_survives(self):
        from repro.server import (
            PartitionService,
            ServiceClient,
            ServiceConfig,
            ServiceResponseError,
        )

        h = Hypergraph(vertices=range(12))
        for i in range(11):
            h.add_edge([i, i + 1])
        config = ServiceConfig(port=0, batch_window=0.0, workers=2)
        svc = PartitionService(config).start()
        client = ServiceClient(url=svc.url, timeout=120.0)
        client.wait_ready(timeout=10.0)
        # A 0.5 tolerance keeps the corridor weight budgets above one
        # module, so the refinement pass actually enters ``flow.solve``
        # (the default 0.1 budget on a 12-module chain carves nothing).
        flow_settings = {"balance_tolerance": 0.5}
        try:
            # Healthy baseline through the flow engine.
            ok = client.partition(
                h, engine="flow", settings={"seed": 0, **flow_settings}
            )
            assert ok["result"]["cutsize"] >= 0

            # Kill the forked worker exactly at the flow.solve site.
            faults.configure("flow.solve=kill:1", seed=29)
            with pytest.raises(ServiceResponseError) as excinfo:
                client.partition(
                    h, engine="flow", settings={"seed": 1, **flow_settings}
                )
            assert excinfo.value.status == 500
            assert excinfo.value.error_type == "WorkerCrashed"
            assert client.healthz()["status"] == "ok"

            # Engines that never enter flow.solve are unaffected.
            other = client.partition(h, engine="fm", settings={"seed": 2})
            assert other["result"]["cutsize"] >= 0

            # Faults off: flow service resumes (fresh seed avoids both
            # the result cache and the crash-quarantine key).
            faults.configure(None)
            again = client.partition(
                h, engine="flow", settings={"seed": 3, **flow_settings}
            )
            assert again["result"]["cutsize"] >= 0
        finally:
            svc.stop()
