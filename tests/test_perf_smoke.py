"""Tier-1 performance smoke test on the 2000-edge acceptance instance.

Not a benchmark — the ceilings are deliberately generous (an order of
magnitude above current timings) so the test only trips on catastrophic
regressions, e.g. an accidental return to per-call neighbour-set copies
or linear winner rescans in the hot paths.  Real numbers live in
``benchmarks/bench_core_micro.py``.
"""

import time

import pytest

from repro.core.algorithm1 import TIMING_PHASES, algorithm1
from repro.generators import random_hypergraph

pytestmark = pytest.mark.perf


@pytest.fixture(scope="module")
def big():
    return random_hypergraph(1200, 2000, seed=7, connect=True)


def test_single_start_under_generous_ceiling(big):
    t0 = time.perf_counter()
    result = algorithm1(big, num_starts=1, seed=0)
    elapsed = time.perf_counter() - t0
    assert elapsed < 5.0, f"single start took {elapsed:.2f}s on the 2k-edge instance"
    assert set(TIMING_PHASES) <= set(result.timings)
    # The sum of phase timers accounts for the bulk of the wall clock.
    assert sum(result.timings.values()) <= elapsed + 0.01


def test_ten_starts_under_generous_ceiling(big):
    t0 = time.perf_counter()
    result = algorithm1(big, num_starts=10, seed=1)
    elapsed = time.perf_counter() - t0
    assert elapsed < 15.0, f"10 starts took {elapsed:.2f}s on the 2k-edge instance"
    assert all(result.timings[phase] >= 0.0 for phase in TIMING_PHASES)
    assert result.timings["cut"] > 0.0
    assert result.timings["complete"] > 0.0
