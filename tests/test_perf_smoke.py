"""Tier-1 performance smoke test on the 2000-edge acceptance instance.

Not a benchmark — the ceilings are deliberately generous (an order of
magnitude above current timings) so the test only trips on catastrophic
regressions, e.g. an accidental return to per-call neighbour-set copies
or linear winner rescans in the hot paths.  Real numbers live in
``benchmarks/bench_core_micro.py``.
"""

import time

import pytest

from repro import obs
from repro.core.algorithm1 import TIMING_PHASES, algorithm1
from repro.generators import random_hypergraph

pytestmark = pytest.mark.perf


@pytest.fixture(scope="module")
def big():
    return random_hypergraph(1200, 2000, seed=7, connect=True)


def test_single_start_under_generous_ceiling(big):
    t0 = time.perf_counter()
    result = algorithm1(big, num_starts=1, seed=0)
    elapsed = time.perf_counter() - t0
    assert elapsed < 5.0, f"single start took {elapsed:.2f}s on the 2k-edge instance"
    assert set(TIMING_PHASES) <= set(result.timings)
    # The sum of phase timers accounts for the bulk of the wall clock.
    assert sum(result.timings.values()) <= elapsed + 0.01


def test_ten_starts_under_generous_ceiling(big):
    t0 = time.perf_counter()
    result = algorithm1(big, num_starts=10, seed=1)
    elapsed = time.perf_counter() - t0
    assert elapsed < 15.0, f"10 starts took {elapsed:.2f}s on the 2k-edge instance"
    assert all(result.timings[phase] >= 0.0 for phase in TIMING_PHASES)
    assert result.timings["cut"] > 0.0
    assert result.timings["complete"] > 0.0


def test_disabled_obs_overhead_under_two_percent(big):
    """Acceptance criterion: observability off must cost < 2% of a
    single start on the 2k-edge instance.

    Methodology: time the real single start (obs disabled, best of 3),
    count how many obs events the same run emits when enabled, then time
    ``REPS`` repetitions of that event volume through the disabled-path
    entry points (each loop iteration exercises span+count+gauge, a 3x
    overcount of a real event).  The projected per-run no-op cost —
    measured total / REPS — must stay under the 2% line.
    """
    assert not obs.is_enabled()
    base = min(
        _timed(lambda: algorithm1(big, num_starts=1, seed=0)) for _ in range(3)
    )

    with obs.scoped() as reg:
        algorithm1(big, num_starts=1, seed=0)
        snap = reg.snapshot()
    events = (
        sum(s["count"] for s in snap["spans"].values())
        + len(snap["counters"])
        + len(snap["gauges"])
    )
    assert events > 0

    assert not obs.is_enabled()
    REPS = 200
    t0 = time.perf_counter()
    for _ in range(REPS * events):
        with obs.span("overhead.probe"):
            pass
        obs.count("overhead.probe")
        obs.gauge("overhead.probe", 1.0)
    per_run = (time.perf_counter() - t0) / REPS

    assert per_run < 0.02 * base, (
        f"{events} disabled obs events project to {per_run * 1e6:.1f}us/run "
        f"({100 * per_run / base:.2f}% of the {base * 1e3:.1f}ms single start)"
    )
    # Nothing leaked into the registry through the disabled path.
    assert obs.registry().counter("overhead.probe") == 0


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0
