"""Integration tests: every partitioner on real suite instances.

These are the "does the whole toolbox actually work together" tests — a
downsized version of the Table-2 protocol, run on the two smallest suite
instances so the full matrix stays fast.
"""

import pytest

from repro.baselines import (
    fiduccia_mattheyses,
    kernighan_lin,
    multilevel_bipartition,
    random_cut,
    simulated_annealing,
    spectral_bisection,
)
from repro.baselines.simulated_annealing import AnnealingSchedule
from repro.core.algorithm1 import algorithm1
from repro.core.refinement import fm_refine
from repro.core.validation import check_bipartition
from repro.generators.suite import load_instance

INSTANCES = ("Bd1", "Diff1")

PARTITIONERS = {
    "algorithm1": lambda h, s: algorithm1(h, num_starts=10, seed=s).bipartition,
    "kl": lambda h, s: kernighan_lin(h, seed=s).bipartition,
    "fm": lambda h, s: fiduccia_mattheyses(h, seed=s).bipartition,
    "sa": lambda h, s: simulated_annealing(
        h, schedule=AnnealingSchedule(alpha=0.85), seed=s
    ).bipartition,
    "random": lambda h, s: random_cut(h, num_starts=10, seed=s).bipartition,
    "spectral": lambda h, s: spectral_bisection(h, seed=s).bipartition,
    "multilevel": lambda h, s: multilevel_bipartition(h, seed=s).bipartition,
}


@pytest.fixture(scope="module", params=INSTANCES)
def instance(request):
    h, recipe, gt = load_instance(request.param)
    return request.param, h, gt


class TestEveryPartitionerOnSuite:
    @pytest.mark.parametrize("method", sorted(PARTITIONERS))
    def test_valid_cut(self, instance, method):
        name, h, _ = instance
        bp = PARTITIONERS[method](h, 0)
        check_bipartition(bp)
        assert bp.left and bp.right
        assert bp.cutsize <= h.num_edges

    @pytest.mark.parametrize("method", ["algorithm1", "fm", "multilevel"])
    def test_strong_methods_beat_random(self, instance, method):
        name, h, _ = instance
        strong = PARTITIONERS[method](h, 0)
        weak = PARTITIONERS["random"](h, 0)
        assert strong.cutsize < weak.cutsize

    def test_algorithm1_near_planted_on_diff(self):
        h, _, gt = load_instance("Diff1")
        bp = algorithm1(h, num_starts=50, seed=0).bipartition
        assert bp.cutsize <= gt.planted_cutsize + 1

    def test_refined_algorithm1_competitive_with_fm(self, instance):
        name, h, _ = instance
        alg1 = algorithm1(h, num_starts=10, seed=0, balance_tolerance=0.1).bipartition
        refined = fm_refine(alg1, seed=0)
        fm = PARTITIONERS["fm"](h, 0)
        assert refined.cutsize <= max(fm.cutsize * 1.5, fm.cutsize + 5)


class TestEndToEndFlows:
    def test_generate_partition_report_parts(self, tmp_path):
        """The full CLI-equivalent flow through the library API."""
        from repro.io import read_hgr, write_hgr
        from repro.io.parts import read_parts, write_parts
        from repro.metrics.cut import cutsize
        from repro.report import full_report

        h, _, _ = load_instance("Bd1")
        hgr = tmp_path / "bd1.hgr"
        write_hgr(h, hgr)
        loaded = read_hgr(hgr)
        bp = algorithm1(loaded, num_starts=10, seed=0).bipartition

        parts = tmp_path / "bd1.part"
        write_parts(bp, parts)
        blocks = read_parts(parts, loaded)
        assert cutsize(loaded, blocks[0]) == bp.cutsize

        report = tmp_path / "bd1.md"
        report.write_text(full_report(bp), encoding="utf-8")
        assert f"**{bp.cutsize}**" in report.read_text()

    def test_partition_then_place(self):
        """Partition quality carries into placement quality."""
        from repro.placement import SlotGrid, mincut_place

        h, _, _ = load_instance("Bd1")
        for v in h.vertices:
            h.set_vertex_weight(v, 1.0)
        result = mincut_place(h, SlotGrid(10, 11), seed=0)
        assert len(result.positions) == h.num_vertices
        assert result.total_hpwl > 0

    def test_kway_on_suite(self):
        from repro.core.kway import recursive_bisection

        h, _, _ = load_instance("Bd1")
        kp = recursive_bisection(h, 4, num_starts=5, seed=0)
        assert kp.k == 4
        assert kp.connectivity >= kp.cutsize
