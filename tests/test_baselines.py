"""Tests for the baseline partitioners: random, KL, FM, SA, spectral."""

import random

import pytest
from hypothesis import given, settings

from repro.baselines import (
    fiduccia_mattheyses,
    kernighan_lin,
    random_cut,
    simulated_annealing,
    spectral_bisection,
)
from repro.baselines.cutstate import CutState
from repro.baselines.simulated_annealing import AnnealingSchedule
from repro.core.hypergraph import Hypergraph
from repro.core.partition import Bipartition
from repro.core.validation import brute_force_min_cut, check_bipartition
from repro.generators.difficult import planted_bisection
from repro.generators.random_hypergraph import random_hypergraph
from tests.conftest import hypergraphs


@pytest.fixture
def medium():
    rng = random.Random(99)
    h = Hypergraph(vertices=range(36))
    for _ in range(70):
        h.add_edge(rng.sample(range(36), rng.choice([2, 2, 3, 4])))
    return h


ALL_BASELINES = [
    ("random", lambda h, s: random_cut(h, num_starts=5, seed=s)),
    ("kl", lambda h, s: kernighan_lin(h, seed=s)),
    ("fm", lambda h, s: fiduccia_mattheyses(h, seed=s)),
    (
        "sa",
        lambda h, s: simulated_annealing(
            h, schedule=AnnealingSchedule(alpha=0.8, moves_per_temperature=50), seed=s
        ),
    ),
    ("spectral", lambda h, s: spectral_bisection(h, seed=s)),
]


class TestCommonContract:
    @pytest.mark.parametrize("name,runner", ALL_BASELINES)
    def test_valid_partition(self, medium, name, runner):
        result = runner(medium, 0)
        bp = result.bipartition
        assert bp.left | bp.right == set(medium.vertices)
        assert bp.left and bp.right
        check_bipartition(bp)

    @pytest.mark.parametrize("name,runner", ALL_BASELINES)
    def test_deterministic_with_seed(self, medium, name, runner):
        a = runner(medium, 7)
        b = runner(medium, 7)
        assert a.cutsize == b.cutsize
        assert a.bipartition == b.bipartition

    @pytest.mark.parametrize("name,runner", ALL_BASELINES)
    def test_rejects_tiny_input(self, name, runner):
        with pytest.raises(ValueError):
            runner(Hypergraph(vertices=["only"]), 0)

    @pytest.mark.parametrize("name,runner", ALL_BASELINES)
    def test_result_metadata(self, medium, name, runner):
        result = runner(medium, 0)
        assert result.iterations >= 1
        assert result.evaluations >= 0
        assert result.history
        assert result.cutsize == result.bipartition.cutsize


class TestRandomCut:
    def test_best_of_many_no_worse(self, medium):
        one = random_cut(medium, num_starts=1, seed=5)
        many = random_cut(medium, num_starts=30, seed=5)
        assert many.cutsize <= one.cutsize

    def test_history_monotone(self, medium):
        result = random_cut(medium, num_starts=10, seed=0)
        assert list(result.history) == sorted(result.history, reverse=True)

    def test_balanced(self, medium):
        result = random_cut(medium, num_starts=3, seed=0)
        assert result.bipartition.cardinality_imbalance <= 1

    def test_bad_starts(self, medium):
        with pytest.raises(ValueError):
            random_cut(medium, num_starts=0)


class TestKernighanLin:
    def test_improves_over_initial(self, medium):
        rng = random.Random(3)
        from repro.baselines.cutstate import random_balanced_sides

        left, right = random_balanced_sides(medium, rng)
        initial = Bipartition(medium, left, right)
        result = kernighan_lin(medium, initial=initial)
        assert result.cutsize <= initial.cutsize

    def test_swaps_preserve_balance(self, medium):
        result = kernighan_lin(medium, seed=1)
        assert result.bipartition.cardinality_imbalance <= 1

    def test_stops_on_no_improvement(self, medium):
        result = kernighan_lin(medium, seed=1, max_passes=50)
        assert result.iterations < 50  # converged early

    def test_shortlist_validation(self, medium):
        with pytest.raises(ValueError):
            kernighan_lin(medium, shortlist=0)

    def test_full_shortlist_at_least_as_good(self):
        """shortlist = n reproduces (or beats) the narrow shortlist."""
        rng = random.Random(4)
        h = Hypergraph(vertices=range(12))
        for _ in range(20):
            h.add_edge(rng.sample(range(12), 2))
        from repro.baselines.cutstate import random_balanced_sides

        left, _ = random_balanced_sides(h, random.Random(0))
        initial = Bipartition(h, left, set(h.vertices) - left)
        narrow = kernighan_lin(h, initial=initial, shortlist=1)
        wide = kernighan_lin(h, initial=initial, shortlist=12)
        assert wide.cutsize <= narrow.cutsize + 2  # wide explores more pairs

    def test_finds_planted_cut_small(self):
        inst = planted_bisection(40, 60, crossing_edges=1, seed=2)
        result = kernighan_lin(inst.hypergraph, seed=0)
        assert result.cutsize <= 6  # far below random (~25)


class TestFiducciaMattheyses:
    def test_refiner_never_worsens(self, medium):
        from repro.baselines.cutstate import random_balanced_sides

        left, right = random_balanced_sides(medium, random.Random(8))
        initial = Bipartition(medium, left, right)
        result = fiduccia_mattheyses(medium, initial=initial)
        assert result.cutsize <= initial.cutsize

    def test_balance_tolerance_respected(self, medium):
        result = fiduccia_mattheyses(medium, balance_tolerance=0.1, seed=0)
        assert result.bipartition.weight_imbalance_fraction <= 0.1 + 2.0 / 36

    def test_negative_tolerance_rejected(self, medium):
        with pytest.raises(ValueError):
            fiduccia_mattheyses(medium, balance_tolerance=-0.1)

    def test_fixed_vertices_never_move(self, medium):
        from repro.baselines.cutstate import random_balanced_sides

        left, right = random_balanced_sides(medium, random.Random(8))
        initial = Bipartition(medium, left, right)
        fixed = set(list(left)[:3]) | set(list(right)[:3])
        result = fiduccia_mattheyses(medium, initial=initial, fixed=fixed)
        for v in fixed:
            assert (v in result.bipartition.left) == (v in initial.left)

    def test_fixed_requires_initial(self, medium):
        with pytest.raises(ValueError):
            fiduccia_mattheyses(medium, fixed={0})

    def test_fixed_unknown_rejected(self, medium):
        from repro.baselines.cutstate import random_balanced_sides

        left, right = random_balanced_sides(medium, random.Random(8))
        with pytest.raises(ValueError):
            fiduccia_mattheyses(
                medium, initial=Bipartition(medium, left, right), fixed={"ghost"}
            )

    def test_gain_bucket_consistency(self, medium):
        """After a full FM run the final state must equal a fresh recount."""
        result = fiduccia_mattheyses(medium, seed=3)
        state = CutState(medium, result.bipartition.left)
        assert state.cutsize == result.cutsize

    def test_solves_small_planted(self):
        inst = planted_bisection(40, 60, crossing_edges=1, seed=5)
        result = fiduccia_mattheyses(inst.hypergraph, seed=0)
        assert result.cutsize <= 4


class TestSimulatedAnnealing:
    def test_respects_max_moves(self, medium):
        schedule = AnnealingSchedule(max_total_moves=500, moves_per_temperature=100)
        result = simulated_annealing(medium, schedule=schedule, seed=0)
        assert result.evaluations <= 3000  # gain+apply+penalty probes bounded

    def test_better_than_single_random(self, medium):
        sa = simulated_annealing(
            medium, schedule=AnnealingSchedule(alpha=0.9), seed=0
        )
        rand = random_cut(medium, num_starts=1, seed=0)
        assert sa.cutsize <= rand.cutsize

    def test_balance_tolerance_incumbent(self, medium):
        result = simulated_annealing(medium, balance_tolerance=0.15, seed=1)
        assert result.bipartition.weight_imbalance_fraction <= 0.35

    def test_explicit_initial_temperature(self, medium):
        schedule = AnnealingSchedule(initial_temperature=2.0, alpha=0.5, moves_per_temperature=20)
        result = simulated_annealing(medium, schedule=schedule, seed=0)
        assert result.iterations >= 1


class TestSpectral:
    def test_exact_bisection(self, medium):
        result = spectral_bisection(medium)
        assert result.bipartition.cardinality_imbalance <= 1

    def test_separates_planted_clusters(self):
        inst = planted_bisection(60, 90, crossing_edges=1, seed=1)
        result = spectral_bisection(inst.hypergraph)
        assert result.cutsize <= 8  # near the planted structure

    def test_handles_edgeless(self):
        h = Hypergraph(vertices=range(6))
        result = spectral_bisection(h)
        assert result.cutsize == 0

    def test_singleton_edges_ignored(self):
        h = Hypergraph(vertices=range(4), edges={"s": [0]})
        result = spectral_bisection(h)
        assert result.cutsize == 0


class TestAgainstOracle:
    @settings(max_examples=15, deadline=None)
    @given(hypergraphs(max_vertices=8, max_edges=8))
    def test_never_beat_brute_force_bisection(self, h):
        optimum = brute_force_min_cut(h).cutsize
        for _, runner in ALL_BASELINES[:3]:  # random, kl, fm
            assert runner(h, 0).cutsize >= optimum


class TestSpectralStability:
    """The canonicalized Fiedler order makes spectral cuts bit-stable.

    ``spectral`` sits in the bench harness's *exact* cut gate, so its
    partition must be a deterministic function of the hypergraph alone —
    independent of the Lanczos start vector (``seed``) on the sparse
    path and stable across repeated eigensolves on the dense path.
    """

    def test_sparse_path_is_start_vector_invariant(self):
        # > _DENSE_LIMIT vertices forces the Lanczos (eigsh) path, whose
        # raw eigenvector varies with v0; the canonical order must not.
        h = random_hypergraph(650, 1000, seed=5, connect=True)
        results = [spectral_bisection(h, seed=s) for s in (0, 1, 2)]
        cuts = {r.cutsize for r in results}
        assert len(cuts) == 1
        sides = {frozenset(map(repr, r.bipartition.left)) for r in results}
        complements = {frozenset(map(repr, r.bipartition.right)) for r in results}
        # Identical up to the (sign-fixed) side labelling.
        assert len(sides) == 1 and len(complements) == 1

    def test_dense_path_is_run_to_run_stable(self):
        h = random_hypergraph(200, 320, seed=9, connect=True)
        a = spectral_bisection(h, seed=0)
        b = spectral_bisection(h, seed=17)
        assert a.cutsize == b.cutsize
        assert set(a.bipartition.left) == set(b.bipartition.left)

    def test_canonical_order_fixes_sign_and_ties(self):
        import numpy as np

        from repro.baselines.spectral import _canonical_order

        fiedler = np.array([0.5, -0.5, 0.5, -0.5])
        order = list(_canonical_order(fiedler))
        flipped = list(_canonical_order(-fiedler))
        assert order == flipped
        # Ties (equal quantized values) sort by vertex index.
        tied = np.array([0.25, 0.25 + 1e-12, -0.25, -0.25 - 1e-12])
        assert list(_canonical_order(tied)) == [2, 3, 0, 1]
