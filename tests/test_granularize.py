"""Tests for module granularization (Section 5 extension)."""

import math

import pytest
from hypothesis import given, settings

from repro.core.granularize import granularize, project_partition
from repro.core.hypergraph import Hypergraph
from repro.core.partition import Bipartition
from tests.conftest import hypergraphs


@pytest.fixture
def weighted():
    h = Hypergraph(edges={"n1": ["big", "s1"], "n2": ["big", "s2"], "n3": ["s1", "s2"]})
    h.set_vertex_weight("big", 4.0)
    return h


class TestGranularize:
    def test_heavy_module_split(self, weighted):
        g = granularize(weighted, grain=1.0)
        subs = g.submodules_of("big")
        assert len(subs) == 4
        assert all(g.hypergraph.vertex_weight(s) == pytest.approx(1.0) for s in subs)

    def test_light_modules_pass_through(self, weighted):
        g = granularize(weighted, grain=1.0)
        assert "s1" in g.hypergraph
        assert g.origin["s1"] == "s1"

    def test_chain_edges_link_submodules(self, weighted):
        g = granularize(weighted, grain=1.0, chain_weight=5.0)
        chains = [n for n in g.hypergraph.edge_names if isinstance(n, tuple) and n[0] == "chain"]
        assert len(chains) == 3  # 4 pieces -> 3 links
        for name in chains:
            assert g.hypergraph.edge_size(name) == 2
            assert g.hypergraph.edge_weight(name) == 5.0

    def test_total_weight_conserved(self, weighted):
        g = granularize(weighted, grain=1.0)
        assert g.hypergraph.total_vertex_weight == pytest.approx(
            weighted.total_vertex_weight
        )

    def test_original_nets_preserved(self, weighted):
        g = granularize(weighted, grain=1.0)
        assert g.hypergraph.has_edge("n1")
        # pins of n1 map back to {big, s1}
        mapped = {g.origin[p] for p in g.hypergraph.edge_members("n1")}
        assert mapped == {"big", "s1"}

    def test_pins_distributed_round_robin(self):
        h = Hypergraph(edges={f"n{i}": ["big", i] for i in range(4)})
        h.set_vertex_weight("big", 2.0)
        g = granularize(h, grain=1.0)
        # big splits in 2; its 4 net pins spread over both halves
        used = set()
        for i in range(4):
            for p in g.hypergraph.edge_members(f"n{i}"):
                if g.origin[p] == "big":
                    used.add(p)
        assert len(used) == 2

    def test_bad_grain_rejected(self, weighted):
        with pytest.raises(ValueError):
            granularize(weighted, grain=0)

    @settings(max_examples=30)
    @given(hypergraphs(weighted=True))
    def test_weight_conservation_property(self, h):
        g = granularize(h, grain=1.0)
        assert g.hypergraph.total_vertex_weight == pytest.approx(h.total_vertex_weight)
        # piece counts match ceil(w / grain)
        for v in h.vertices:
            expected = max(1, math.ceil(h.vertex_weight(v) / 1.0))
            assert len(g.submodules_of(v)) == expected


class TestProjection:
    def test_round_trip_unsplit(self, weighted):
        g = granularize(weighted, grain=10.0)  # nothing splits
        bp = Bipartition(g.hypergraph, {"big"}, {"s1", "s2"})
        back = project_partition(g, bp)
        assert back.left == frozenset({"big"})

    def test_majority_vote(self, weighted):
        g = granularize(weighted, grain=1.0)
        subs = g.submodules_of("big")
        left = set(subs[:3]) | {"s1"}  # 3 of 4 big pieces left
        right = (set(g.hypergraph.vertices) - left)
        back = project_partition(g, Bipartition(g.hypergraph, left, right))
        assert "big" in back.left

    def test_projection_covers_all_modules(self, weighted):
        g = granularize(weighted, grain=1.0)
        from repro.core.algorithm1 import algorithm1

        bp = algorithm1(g.hypergraph, num_starts=5, seed=0).bipartition
        back = project_partition(g, bp)
        assert back.left | back.right == set(weighted.vertices)

    def test_degenerate_all_one_side_recovers(self):
        """Majority vote sending every module left triggers the rebalance."""
        h = Hypergraph(edges={"n": ["a", "b"]})
        h.set_vertex_weight("a", 2.0)
        h.set_vertex_weight("b", 2.0)
        g = granularize(h, grain=1.0)  # a -> 2 pieces, b -> 2 pieces
        a_pieces = g.submodules_of("a")
        b_pieces = g.submodules_of("b")
        # a: both pieces left; b: tie (1-1) -> also votes left.
        left = set(a_pieces) | {b_pieces[0]}
        right = {b_pieces[1]}
        back = project_partition(g, Bipartition(g.hypergraph, left, right))
        assert back.left and back.right
        assert back.left | back.right == {"a", "b"}
