"""Tests for the intersection-graph dual construction (Figure 1 et al.)."""

from hypothesis import given

from repro.core.hypergraph import Hypergraph
from repro.core.intersection import intersection_graph
from tests.conftest import hypergraphs


class TestFigure1:
    """The paper's Figure 1: G dual to the 8-node, 5-edge hypergraph."""

    def test_is_a_path(self, figure1_hypergraph):
        ig = intersection_graph(figure1_hypergraph)
        g = ig.graph
        assert g.num_nodes == 5
        assert g.num_edges == 4
        assert g.neighbors("A") == frozenset({"B"})
        assert g.neighbors("B") == frozenset({"A", "C"})
        assert g.neighbors("C") == frozenset({"B", "D"})
        assert g.neighbors("E") == frozenset({"D"})

    def test_shared_vertices_witness(self, figure1_hypergraph):
        ig = intersection_graph(figure1_hypergraph)
        assert ig.shared("A", "B") == frozenset({3})
        assert ig.shared("B", "A") == frozenset({3})  # order-insensitive
        assert ig.shared("A", "E") == frozenset()


class TestFigure4:
    def test_counts(self, figure4_hypergraph):
        ig = intersection_graph(figure4_hypergraph)
        assert ig.num_nodes == 12
        # c touches modules {1,3,4,12}: meets a,b,d,e,f (via 1/4/12) and g,h (via 3)
        assert ig.graph.neighbors("c") == frozenset({"a", "b", "d", "e", "f", "g", "h"})

    def test_two_clusters_bridged_by_c_and_h(self, figure4_hypergraph):
        ig = intersection_graph(figure4_hypergraph)
        g = ig.graph
        # Removing c and h separates the left cluster {a,b,d,e,f}
        # from the right cluster {g,i,j,k,l}.
        sub = g.induced(set(g.nodes) - {"c", "h"})
        comps = sorted(sub.connected_components(), key=len)
        assert {frozenset(c) for c in comps} == {
            frozenset({"a", "b", "d", "e", "f"}),
            frozenset({"g", "i", "j", "k", "l"}),
        }


class TestStructure:
    def test_isolated_edges_become_isolated_nodes(self):
        h = Hypergraph(edges={"A": [1, 2], "B": [3, 4]})
        ig = intersection_graph(h)
        assert ig.graph.degree("A") == 0
        assert ig.graph.degree("B") == 0

    def test_single_pin_nets(self):
        h = Hypergraph(edges={"A": [1], "B": [1, 2]})
        ig = intersection_graph(h)
        assert ig.graph.has_edge("A", "B")  # they share module 1

    def test_empty_hypergraph(self):
        ig = intersection_graph(Hypergraph())
        assert ig.num_nodes == 0
        assert ig.num_edges == 0

    def test_node_weights_are_edge_weights(self):
        h = Hypergraph()
        h.add_edge([1, 2], name="x", weight=3.0)
        ig = intersection_graph(h)
        assert ig.graph.node_weight("x") == 3.0

    def test_degree_bound(self):
        """deg_G(e) <= sum over pins of (deg_H(pin) - 1)."""
        h = Hypergraph(
            edges={"A": [1, 2], "B": [1, 3], "C": [1, 4], "D": [2, 3]}
        )
        ig = intersection_graph(h)
        for name in h.edge_names:
            bound = sum(h.vertex_degree(v) - 1 for v in h.edge_members(name))
            assert ig.graph.degree(name) <= bound


class _SameRepr:
    """Distinct hashable edge names that repr() identically."""

    def __init__(self, tag):
        self.tag = tag

    def __repr__(self):
        return "edge"


class TestReprCollisions:
    """Regression: pair lookups must not key on repr() strings.

    The old construction probed a ``repr``-keyed dict, so two distinct
    edge-name objects with the same ``repr`` could shadow each other's
    shared-vertex witnesses.
    """

    def test_distinct_names_sharing_a_repr(self):
        e1, e2 = _SameRepr(1), _SameRepr(2)
        h = Hypergraph(edges={e1: [1, 2], e2: [2, 3], "X": [1, 3]})
        ig = intersection_graph(h)
        assert ig.graph.has_edge(e1, e2)
        assert ig.shared(e1, e2) == frozenset({2})
        assert ig.shared(e2, e1) == frozenset({2})
        assert ig.shared(e1, "X") == frozenset({1})
        assert ig.shared(e2, "X") == frozenset({3})

    def test_witness_map_distinguishes_same_repr_pairs(self):
        e1, e2, e3 = _SameRepr(1), _SameRepr(2), _SameRepr(3)
        h = Hypergraph(edges={e1: [1, 2], e2: [2, 3], e3: [3, 1]})
        ig = intersection_graph(h)
        witnesses = set(ig.shared_vertices.values())
        assert witnesses == {frozenset({1}), frozenset({2}), frozenset({3})}


class TestProperties:
    @given(hypergraphs())
    def test_adjacency_iff_intersection(self, h):
        ig = intersection_graph(h)
        names = h.edge_names
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                intersects = bool(h.edge_members(a) & h.edge_members(b))
                assert ig.graph.has_edge(a, b) == intersects
                if intersects:
                    assert ig.shared(a, b) == h.edge_members(a) & h.edge_members(b)

    @given(hypergraphs())
    def test_every_edge_is_a_node(self, h):
        ig = intersection_graph(h)
        assert set(ig.graph.nodes) == set(h.edge_names)
