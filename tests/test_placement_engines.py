"""Tests for the annealing and quadratic placers."""

import random

import pytest

from repro.core.hypergraph import Hypergraph
from repro.generators.netlists import clustered_netlist
from repro.placement import (
    PlacementSchedule,
    SlotGrid,
    annealing_place,
    hpwl,
    mincut_place,
    quadratic_place,
)
from repro.placement.annealing_placement import _IncrementalHpwl
from repro.placement.mincut_placement import PlacementError
from repro.placement.quadratic_placement import _border_slots


@pytest.fixture
def netlist():
    h = clustered_netlist(36, 70, "std_cell", seed=41)
    for v in h.vertices:
        h.set_vertex_weight(v, 1.0)
    return h


def random_hpwl(h, grid, seed=0):
    rng = random.Random(seed)
    slots = grid.full_region().slots()
    rng.shuffle(slots)
    coords = {v: (float(c), float(r)) for v, (r, c) in zip(h.vertices, slots)}
    return hpwl(h, coords)


class TestIncrementalHpwl:
    def test_tracks_total(self, netlist):
        grid = SlotGrid(6, 6)
        slots = grid.full_region().slots()
        positions = dict(zip(sorted(netlist.vertices, key=repr), slots))
        state = _IncrementalHpwl(netlist, positions)
        coords = {v: (float(c), float(r)) for v, (r, c) in positions.items()}
        assert state.total == pytest.approx(hpwl(netlist, coords))

    def test_swap_delta_matches_commit(self, netlist):
        grid = SlotGrid(6, 6)
        slots = grid.full_region().slots()
        modules = sorted(netlist.vertices, key=repr)
        positions = dict(zip(modules, slots))
        state = _IncrementalHpwl(netlist, positions)
        rng = random.Random(5)
        for _ in range(30):
            a, b = rng.sample(modules, 2)
            slot_b = positions[b]
            before = state.total
            delta = state.swap_delta(a, b, slot_b)
            state.commit_swap(a, b, slot_b)
            assert state.total == pytest.approx(before + delta)
        state.validate()

    def test_move_to_empty_slot(self, netlist):
        grid = SlotGrid(7, 7)  # 49 slots, 36 modules
        slots = grid.full_region().slots()
        modules = sorted(netlist.vertices, key=repr)
        positions = dict(zip(modules, slots))
        state = _IncrementalHpwl(netlist, positions)
        empty = slots[-1]
        a = modules[0]
        before = state.total
        delta = state.swap_delta(a, None, empty)
        state.commit_swap(a, None, empty)
        assert state.positions[a] == empty
        assert state.total == pytest.approx(before + delta)
        state.validate()


class TestAnnealingPlace:
    def test_valid_and_better_than_random(self, netlist):
        grid = SlotGrid(6, 6)
        result = annealing_place(netlist, grid, seed=0)
        assert len(result.positions) == 36
        assert len(set(result.positions.values())) == 36
        assert result.total_hpwl < random_hpwl(netlist, grid)

    def test_initial_polish_never_worse(self, netlist):
        grid = SlotGrid(6, 6)
        start = mincut_place(netlist, grid, seed=0)
        polished = annealing_place(
            netlist, grid, initial=start.positions, seed=0,
            schedule=PlacementSchedule(alpha=0.8),
        )
        assert polished.total_hpwl <= start.total_hpwl

    def test_respects_move_cap(self, netlist):
        schedule = PlacementSchedule(max_total_moves=200, moves_per_temperature=50)
        result = annealing_place(netlist, SlotGrid(6, 6), schedule=schedule, seed=0)
        assert len(result.positions) == 36

    def test_deterministic(self, netlist):
        a = annealing_place(netlist, SlotGrid(6, 6), seed=3,
                            schedule=PlacementSchedule(max_total_moves=2000))
        b = annealing_place(netlist, SlotGrid(6, 6), seed=3,
                            schedule=PlacementSchedule(max_total_moves=2000))
        assert a.positions == b.positions

    def test_bad_initial_rejected(self, netlist):
        with pytest.raises(PlacementError):
            annealing_place(netlist, SlotGrid(6, 6), initial={"ghost": (0, 0)})
        start = mincut_place(netlist, SlotGrid(6, 6), seed=0).positions
        overlapping = dict(start)
        first, second = sorted(overlapping, key=repr)[:2]
        overlapping[second] = overlapping[first]
        with pytest.raises(PlacementError):
            annealing_place(netlist, SlotGrid(6, 6), initial=overlapping)

    def test_capacity_check(self, netlist):
        with pytest.raises(PlacementError):
            annealing_place(netlist, SlotGrid(5, 5))


class TestQuadraticPlace:
    def test_valid_and_better_than_random(self, netlist):
        grid = SlotGrid(6, 6)
        result = quadratic_place(netlist, grid)
        assert len(result.positions) == 36
        assert len(set(result.positions.values())) == 36
        assert result.total_hpwl < random_hpwl(netlist, grid)

    def test_anchors_validated(self, netlist):
        with pytest.raises(PlacementError):
            quadratic_place(netlist, SlotGrid(6, 6), anchors=["ghost", 0])
        with pytest.raises(PlacementError):
            quadratic_place(netlist, SlotGrid(6, 6), anchors=[0])

    def test_explicit_anchors(self, netlist):
        anchors = sorted(netlist.vertices, key=repr)[:4]
        result = quadratic_place(netlist, SlotGrid(6, 6), anchors=anchors)
        assert len(result.positions) == 36

    def test_deterministic(self, netlist):
        a = quadratic_place(netlist, SlotGrid(6, 6))
        b = quadratic_place(netlist, SlotGrid(6, 6))
        assert a.positions == b.positions

    def test_handles_isolated_modules(self):
        h = Hypergraph(vertices=range(9), edges={"n": [0, 1], "m": [1, 2]})
        result = quadratic_place(h, SlotGrid(3, 3))
        assert len(result.positions) == 9

    def test_capacity_check(self, netlist):
        with pytest.raises(PlacementError):
            quadratic_place(netlist, SlotGrid(5, 5))

    def test_border_slots_unique_and_on_border(self):
        grid = SlotGrid(5, 7)
        ring = _border_slots(grid, 8)
        assert len(ring) == len(set(ring)) == 8
        for r, c in ring:
            assert r in (0, 4) or c in (0, 6)

    def test_border_slots_small_grid(self):
        assert _border_slots(SlotGrid(1, 3), 10) == [(0, 0), (0, 1), (0, 2)]


class TestPlacementEngineDeadlines:
    def test_annealing_zero_deadline_degrades_validly(self, netlist):
        result = annealing_place(
            netlist,
            SlotGrid(6, 6),
            seed=0,
            deadline=0.0,
            schedule=PlacementSchedule(initial_temperature=5.0, moves_per_temperature=5_000),
        )
        assert len(set(result.positions.values())) == 36
        assert result.degraded is True
        assert "deadline" in result.degrade_reason

    def test_annealing_generous_deadline_matches_unconstrained(self, netlist):
        schedule = PlacementSchedule(max_total_moves=2_000)
        bounded = annealing_place(netlist, SlotGrid(6, 6), seed=3, schedule=schedule, deadline=600.0)
        free = annealing_place(netlist, SlotGrid(6, 6), seed=3, schedule=schedule)
        assert bounded.degraded is False
        assert bounded.positions == free.positions

    def test_quadratic_zero_deadline_is_deterministic_fallback(self, netlist):
        a = quadratic_place(netlist, SlotGrid(6, 6), deadline=0.0)
        b = quadratic_place(netlist, SlotGrid(6, 6), deadline=0.0)
        assert a.degraded is True
        assert "row-major" in a.degrade_reason
        assert a.positions == b.positions
        assert len(set(a.positions.values())) == 36

    def test_quadratic_generous_deadline_matches_unconstrained(self, netlist):
        bounded = quadratic_place(netlist, SlotGrid(6, 6), deadline=600.0)
        free = quadratic_place(netlist, SlotGrid(6, 6))
        assert bounded.degraded is False
        assert bounded.positions == free.positions
