"""Tests for the boundary graph and the Complete-Cut completion.

Includes the paper's within-one-of-optimum theorem, validated against an
exact König-matching oracle on random connected bipartite graphs.
"""

import random
from itertools import combinations

import pytest
from hypothesis import given, settings

from repro.core.boundary import BoundaryGraph, boundary_graph
from repro.core.complete_cut import (
    VARIANTS,
    CompletionError,
    complete_cut,
    complete_cut_weighted,
    optimal_completion_losers,
    optimal_completion_size,
)
from repro.core.dual_cut import double_bfs_cut
from repro.core.graph import Graph
from repro.core.hypergraph import Hypergraph
from repro.core.intersection import intersection_graph
from repro.core.validation import check_boundary_graph, check_completion
from tests.conftest import bipartite_graphs


def make_boundary(left, right, edges) -> BoundaryGraph:
    g = Graph(nodes=list(left) + list(right), edges=edges)
    return BoundaryGraph(graph=g, left=frozenset(left), right=frozenset(right))


def brute_force_min_losers(bg: BoundaryGraph) -> int:
    """Exhaustive minimum loser count (independent-set complement)."""
    nodes = sorted(bg.nodes, key=repr)
    best = len(nodes)
    for k in range(len(nodes) + 1):
        for winners in combinations(nodes, len(nodes) - k):
            wset = set(winners)
            if all(not (bg.graph.neighbors(w) & wset) for w in winners):
                best = min(best, k)
                return best  # first feasible k is minimal since k ascends
    return best


class TestBoundaryGraph:
    def test_keeps_only_cross_edges(self):
        g = Graph(edges=[(1, 2), (2, 3), (1, 3), (3, 4)])
        # Fake cut: left {1,2}, right {3,4}, all boundary
        from repro.core.dual_cut import GraphCut

        cut = GraphCut(
            left=frozenset({1, 2}),
            right=frozenset({3, 4}),
            boundary_left=frozenset({1, 2}),
            boundary_right=frozenset({3}),
            seed_u=1,
            seed_v=4,
        )
        bg = boundary_graph(g, cut)
        assert bg.graph.has_edge(2, 3) and bg.graph.has_edge(1, 3)
        assert not bg.graph.has_edge(1, 2)  # intra-side edge dropped
        assert bg.graph.is_bipartite()[0]

    def test_side_of(self):
        bg = make_boundary(["a"], ["b"], [("a", "b")])
        assert bg.side_of("a") == "L"
        assert bg.side_of("b") == "R"
        with pytest.raises(KeyError):
            bg.side_of("zz")

    def test_trivial(self):
        bg = make_boundary(["a"], ["b"], [])
        assert bg.is_trivial()

    def test_from_real_cut(self, figure4_hypergraph):
        ig = intersection_graph(figure4_hypergraph)
        cut = double_bfs_cut(ig.graph, "k", "a")
        bg = boundary_graph(ig.graph, cut)
        check_boundary_graph(ig, cut, bg)


class TestCompleteCut:
    def test_figure3_style_double_star(self):
        """Two adjacent hubs with leaves: hubs lose, leaves win."""
        left = ["u", "l1", "l2"]
        right = ["v", "r1", "r2"]
        edges = [("u", "v"), ("u", "r1"), ("u", "r2"), ("l1", "v"), ("l2", "v")]
        bg = make_boundary(left, right, edges)
        result = complete_cut(bg)
        assert result.losers == frozenset({"u", "v"})
        assert result.winners == frozenset({"l1", "l2", "r1", "r2"})
        check_completion(bg, result)

    def test_isolated_nodes_all_win(self):
        bg = make_boundary(["a", "b"], ["c"], [])
        result = complete_cut(bg)
        assert result.num_losers == 0
        assert result.winners == frozenset({"a", "b", "c"})

    def test_single_edge(self):
        bg = make_boundary(["a"], ["b"], [("a", "b")])
        result = complete_cut(bg)
        assert result.num_losers == 1
        check_completion(bg, result)

    def test_winners_on_correct_sides(self):
        bg = make_boundary(["a", "b"], ["c", "d"], [("a", "c"), ("b", "d")])
        result = complete_cut(bg)
        assert result.winners_left <= frozenset({"a", "b"})
        assert result.winners_right <= frozenset({"c", "d"})

    def test_unknown_variant_rejected(self):
        bg = make_boundary(["a"], ["b"], [("a", "b")])
        with pytest.raises(CompletionError):
            complete_cut(bg, variant="bogus")

    def test_all_variants_produce_valid_completions(self):
        rng = random.Random(0)
        bg = make_boundary(
            [("L", i) for i in range(5)],
            [("R", i) for i in range(5)],
            [(("L", i), ("R", (i * 3 + j) % 5)) for i in range(5) for j in range(2)],
        )
        for variant in VARIANTS:
            result = complete_cut(bg, variant=variant, rng=rng)
            check_completion(bg, result)

    def test_order_records_winners(self):
        bg = make_boundary(["a"], ["b", "c"], [("a", "b")])
        result = complete_cut(bg)
        assert set(result.order) == set(result.winners)


class TestWithinOneTheorem:
    """Greedy vs the exact König optimum.

    The paper claims the greedy is within one of optimum on a connected
    ``G'``, but the bound is false in general — hypothesis finds
    connected instances where a connected 13-node ``G'`` greedily loses
    7 against an optimum of 5.  We assert the provable facts instead:
    the exact bound from below and maximality (every loser is adjacent
    to some winner, else it could have won for free).
    """

    @settings(max_examples=120)
    @given(bipartite_graphs())
    def test_greedy_bounded_below_and_maximal(self, data):
        left, right, edges = data
        bg = make_boundary(left, right, edges)
        completion = complete_cut(bg)
        assert completion.num_losers >= optimal_completion_size(bg)
        winners = completion.winners
        for loser in completion.losers:
            assert any(n in winners for n in bg.graph.neighbors_view(loser))

    @settings(max_examples=60)
    @given(bipartite_graphs(max_side=4))
    def test_konig_oracle_matches_brute_force(self, data):
        left, right, edges = data
        bg = make_boundary(left, right, edges)
        assert optimal_completion_size(bg) == brute_force_min_losers(bg)

    @settings(max_examples=60)
    @given(bipartite_graphs())
    def test_optimal_losers_form_vertex_cover(self, data):
        left, right, edges = data
        bg = make_boundary(left, right, edges)
        losers = optimal_completion_losers(bg)
        for u, v in bg.graph.edges():
            assert u in losers or v in losers


class TestWeightedCompletion:
    def make_weighted_setup(self):
        """Boundary edges over a small hypergraph with heavy module 9."""
        h = Hypergraph(edges={"a": [1, 2], "b": [2, 3], "c": [3, 9], "d": [9, 4]})
        h.set_vertex_weight(9, 10.0)
        bg = make_boundary(["a", "c"], ["b", "d"], [("a", "b"), ("c", "b"), ("c", "d")])
        return h, bg

    def test_engineers_rule_valid(self):
        h, bg = self.make_weighted_setup()
        result = complete_cut_weighted(bg, h, 0.0, 0.0)
        check_completion(bg, result)

    def test_engineers_rule_prefers_lighter_side(self):
        h, bg = self.make_weighted_setup()
        # Start with the right side much heavier: first pick must be left.
        result = complete_cut_weighted(bg, h, initial_left_weight=0.0, initial_right_weight=100.0)
        assert result.order[0] in bg.left

    def test_respects_preassigned_vertices(self):
        h, bg = self.make_weighted_setup()
        result = complete_cut_weighted(
            bg, h, 5.0, 0.0, assigned={2: "L", 3: "L"}
        )
        check_completion(bg, result)

    def test_weighted_matches_unweighted_loser_quality(self):
        """Engineer's rule may cost a little cut but stays near greedy."""
        rng = random.Random(2)
        for trial in range(10):
            r = random.Random(trial)
            h = Hypergraph(vertices=range(12))
            edge_names = []
            for i in range(8):
                name = f"e{i}"
                h.add_edge(r.sample(range(12), 3), name=name)
                edge_names.append(name)
            left = edge_names[:4]
            right = edge_names[4:]
            edges = [
                (a, b)
                for a in left
                for b in right
                if h.edge_members(a) & h.edge_members(b)
            ]
            bg = make_boundary(left, right, edges)
            unweighted = complete_cut(bg).num_losers
            weighted = complete_cut_weighted(bg, h, 0.0, 0.0).num_losers
            assert weighted <= len(bg.nodes)
            assert weighted >= 0
            # soft sanity: weighted never catastrophically worse
            assert weighted <= unweighted + len(bg.nodes) // 2 + 1
