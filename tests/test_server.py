"""Black-box tests for the partition service (``repro.server``).

Everything here talks to a real daemon over a real transport (TCP on an
OS-assigned port, or an AF_UNIX socket in a tmpdir) through
:class:`repro.server.ServiceClient` — no reaching into service
internals except via ``/metrics``.  Covered:

* cache-hit responses byte-identical to the cold run (modulo the
  ``served`` timing section);
* N identical concurrent requests coalescing onto exactly one pool
  execution;
* per-request deadline enforcement (degraded results served, never
  cached);
* LRU eviction under a tiny byte budget;
* structured error responses for every malformed-payload shape — typed
  ``RequestError`` context, never a stack trace;
* cache/dedupe observability in ``/metrics`` (and the disabled-path
  zero-cost contract from ``tests/test_obs.py``);
* a hypothesis property: any interleaving of distinct/duplicate
  requests returns the same cuts as sequential cold runs.

Fixtures bind port 0 / tmpdir sockets, poll readiness (no sleeps), and
tear the daemon down, so ``-x -q`` stays deterministic.
"""

from __future__ import annotations

import json
import os
import socket as socket_module
import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import obs
from repro.runtime import faults
from repro.core.hypergraph import Hypergraph
from repro.engines import run_engine
from repro.io.json_io import hypergraph_to_payload
from repro.placement import mincut_place
from repro.server import (
    PartitionService,
    ServiceClient,
    ServiceClientError,
    ServiceConfig,
    ServiceError,
    ServiceResponseError,
)

pytestmark = pytest.mark.filterwarnings("ignore::pytest.PytestUnhandledThreadExceptionWarning")


@pytest.fixture(autouse=True)
def _obs_reset():
    """The daemon enables obs; leave the global switchboard clean."""
    obs.disable()
    obs.registry().clear()
    yield
    obs.disable()
    obs.registry().clear()


def _graph(seed_edges) -> Hypergraph:
    h = Hypergraph(vertices=range(12))
    for i, pins in enumerate(seed_edges):
        h.add_edge(list(pins), name=f"n{i}")
    return h


EDGESETS = [
    [(0, 1, 2), (2, 3), (3, 4, 5), (5, 6), (6, 7, 8), (8, 9), (9, 10, 11), (11, 0)],
    [(0, 3), (1, 4), (2, 5), (0, 1, 2), (3, 4, 5), (6, 7, 8, 9), (9, 10, 11), (5, 6)],
]


@pytest.fixture
def h() -> Hypergraph:
    return _graph(EDGESETS[0])


@pytest.fixture
def service():
    svc = PartitionService(ServiceConfig(port=0, workers=2, batch_window=0.002)).start()
    client = ServiceClient(url=svc.url, timeout=120.0)
    client.wait_ready(timeout=10.0)
    yield svc, client
    svc.stop()


def _post_raw(client: ServiceClient, body: dict | bytes, path: str = "/partition"):
    raw = (
        body
        if isinstance(body, bytes)
        else json.dumps(body).encode("utf-8")
    )
    return client.request_raw("POST", path, raw)


def _partition_body(h: Hypergraph, engine: str = "fm", **settings) -> dict:
    body = {"op": "partition", "engine": engine, "hypergraph": hypergraph_to_payload(h)}
    if settings:
        body["settings"] = settings
    return body


class TestLifecycle:
    def test_healthz(self, service):
        _, client = service
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["transport"] == "tcp"
        assert health["uptime_seconds"] >= 0

    def test_wait_ready_times_out_against_nothing(self):
        # Grab a port that nothing is listening on.
        probe = socket_module.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        client = ServiceClient(url=f"http://127.0.0.1:{port}", timeout=0.2)
        with pytest.raises(ServiceClientError, match="not ready"):
            client.wait_ready(timeout=0.3, interval=0.05)

    def test_client_needs_exactly_one_transport(self):
        with pytest.raises(ServiceClientError):
            ServiceClient()
        with pytest.raises(ServiceClientError):
            ServiceClient(url="http://x:1", socket_path="/tmp/y")


class TestCacheByteIdentity:
    def test_hit_result_section_is_byte_identical(self, service, h):
        _, client = service
        body = _partition_body(h, engine="algorithm1", starts=4, seed=7)
        status1, raw1 = _post_raw(client, body)
        status2, raw2 = _post_raw(client, body)
        assert status1 == status2 == 200
        # The envelope is {"result":<canonical bytes>,"served":{...}};
        # the result section must match byte for byte.
        result1, served1 = raw1.split(b',"served":')
        result2, served2 = raw2.split(b',"served":')
        assert result1 == result2
        assert json.loads(raw2)["served"]["cache"] == "hit"
        assert json.loads(raw1)["served"]["cache"] == "miss"

    def test_hit_skips_execution(self, service, h):
        _, client = service
        client.partition(h, engine="fm", settings={"seed": 1})
        before = client.metrics()["service"]["executions"]
        response = client.partition(h, engine="fm", settings={"seed": 1})
        assert response["served"]["cache"] == "hit"
        assert response["served"]["attempts"] == 0
        assert client.metrics()["service"]["executions"] == before

    def test_normalized_settings_share_a_cache_entry(self, service, h):
        _, client = service
        # Explicit defaults and omitted settings mean the same run.
        first = client.partition(
            h, engine="fm", settings={"seed": 0, "starts": 10, "balance_tolerance": 0.1}
        )
        second = client.partition(h, engine="fm")
        assert second["served"]["cache"] == "hit"
        assert second["result"] == first["result"]

    def test_different_settings_miss(self, service, h):
        _, client = service
        client.partition(h, engine="fm", settings={"seed": 0})
        response = client.partition(h, engine="fm", settings={"seed": 1})
        assert response["served"]["cache"] == "miss"

    def test_different_graph_misses(self, service):
        _, client = service
        client.partition(_graph(EDGESETS[0]), engine="fm")
        response = client.partition(_graph(EDGESETS[1]), engine="fm")
        assert response["served"]["cache"] == "miss"


class TestEngineParity:
    @pytest.mark.parametrize("engine", ["algorithm1", "fm", "kl", "sa", "random", "spectral"])
    def test_served_cut_equals_local_run(self, service, h, engine):
        _, client = service
        response = client.partition(h, engine=engine, settings={"starts": 4, "seed": 3})
        local_bp, _ = run_engine(engine, h, seed=3, starts=4)
        assert response["result"]["cutsize"] == local_bp.cutsize
        assert response["result"]["weighted_cutsize"] == local_bp.weighted_cutsize
        left = frozenset(response["result"]["left"])
        assert left in (local_bp.left, local_bp.right)

    def test_place_matches_local_run(self, service, h):
        _, client = service
        response = client.place(
            h, placer="mincut", settings={"seed": 2, "partitioner": "fm"}
        )
        local = mincut_place(h, partitioner="fm", seed=2)
        assert response["result"]["total_hpwl"] == pytest.approx(local.total_hpwl)
        assert response["result"]["grid"] == {
            "rows": local.grid.rows,
            "cols": local.grid.cols,
        }
        positions = {tuple(slot) for _, slot in response["result"]["positions"]}
        assert len(positions) == h.num_vertices

    @pytest.mark.parametrize("placer", ["mincut", "annealing", "quadratic"])
    def test_all_placers_serve(self, service, h, placer):
        _, client = service
        response = client.place(h, placer=placer, settings={"seed": 0})
        assert response["result"]["op"] == "place"
        assert response["result"]["placer"] == placer
        assert len(response["result"]["positions"]) == h.num_vertices


class TestDedupe:
    def test_identical_concurrent_requests_execute_once(self, h):
        svc = PartitionService(
            # A wide batch window so all threads land in one in-flight
            # generation; workers=2 proves dedupe isn't pool starvation.
            ServiceConfig(port=0, workers=2, batch_window=0.25)
        ).start()
        try:
            client = ServiceClient(url=svc.url, timeout=120.0)
            client.wait_ready(timeout=10.0)
            body = _partition_body(h, engine="algorithm1", starts=8, seed=5)
            n = 6
            barrier = threading.Barrier(n)
            statuses: list[str] = []
            errors: list[Exception] = []
            lock = threading.Lock()

            def fire():
                try:
                    barrier.wait(timeout=10)
                    status, raw = _post_raw(client, body)
                    assert status == 200
                    with lock:
                        statuses.append(json.loads(raw)["served"]["cache"])
                except Exception as exc:  # surfaced after join
                    with lock:
                        errors.append(exc)

            threads = [threading.Thread(target=fire) for _ in range(n)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert not errors, errors
            assert len(statuses) == n
            # Exactly one request created the execution; everyone else
            # coalesced onto it (or arrived late enough for a cache hit).
            assert statuses.count("miss") == 1
            assert set(statuses) <= {"miss", "coalesced", "hit"}
            metrics = client.metrics()
            assert metrics["service"]["executions"] == 1
            assert metrics["service"]["coalesced"] >= n - 2
            assert metrics["broker"]["coalesced"] == metrics["service"]["coalesced"]
        finally:
            svc.stop()

    def test_distinct_concurrent_requests_all_execute(self, service, h):
        _, client = service
        n = 4
        barrier = threading.Barrier(n)
        results: list[dict] = []
        errors: list[Exception] = []
        lock = threading.Lock()

        def fire(seed: int):
            try:
                barrier.wait(timeout=10)
                response = client.partition(h, engine="fm", settings={"seed": seed})
                with lock:
                    results.append(response)
            except Exception as exc:
                with lock:
                    errors.append(exc)

        threads = [threading.Thread(target=fire, args=(seed,)) for seed in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors, errors
        assert len(results) == n
        assert client.metrics()["service"]["executions"] == n
        by_seed = {r["result"]["settings"]["seed"]: r for r in results}
        for seed in range(n):
            local_bp, _ = run_engine("fm", h, seed=seed, starts=10)
            assert by_seed[seed]["result"]["cutsize"] == local_bp.cutsize


class TestDeadline:
    def test_degraded_result_served_but_not_cached(self, service):
        _, client = service
        big = Hypergraph(vertices=range(60))
        import random as random_module

        rng = random_module.Random(5)
        for i in range(120):
            big.add_edge(rng.sample(range(60), rng.choice([2, 3, 4])), name=f"e{i}")
        settings = {"starts": 400, "seed": 0, "deadline_seconds": 0.02}
        first = client.partition(big, engine="algorithm1", settings=settings)
        assert first["result"]["degraded"] is True
        assert first["result"]["degrade_reason"]
        # Degraded answers depend on wall-clock luck -> never cached.
        second = client.partition(big, engine="algorithm1", settings=settings)
        assert second["served"]["cache"] == "miss"
        metrics = client.metrics()
        assert metrics["service"]["degraded"] >= 2
        assert metrics["cache"]["entries"] == 0

    def test_deadline_is_part_of_the_cache_key(self, service, h):
        _, client = service
        no_deadline = client.partition(h, engine="fm", settings={"seed": 0})
        with_deadline = client.partition(
            h, engine="fm", settings={"seed": 0, "deadline_seconds": 60.0}
        )
        # A generous deadline doesn't degrade, so both cache — under
        # different keys (the fingerprint covers deadline_seconds).
        assert no_deadline["served"]["cache"] == "miss"
        assert with_deadline["served"]["cache"] == "miss"
        assert (
            no_deadline["result"]["fingerprint"]
            != with_deadline["result"]["fingerprint"]
        )
        assert no_deadline["result"]["cutsize"] == with_deadline["result"]["cutsize"]


class TestEviction:
    def test_lru_eviction_under_small_byte_budget(self, h):
        svc = PartitionService(
            ServiceConfig(port=0, workers=1, batch_window=0.0, cache_max_bytes=2048)
        ).start()
        try:
            client = ServiceClient(url=svc.url, timeout=120.0)
            client.wait_ready(timeout=10.0)
            first = client.partition(h, engine="fm", settings={"seed": 0})
            for seed in range(1, 8):
                client.partition(h, engine="fm", settings={"seed": seed})
            metrics = client.metrics()
            assert metrics["cache"]["evictions"] > 0
            assert metrics["cache"]["bytes"] <= 2048
            # seed 0 was evicted: re-requesting is a miss, and the
            # recomputed result is identical (determinism).
            again = client.partition(h, engine="fm", settings={"seed": 0})
            assert again["served"]["cache"] == "miss"
            assert again["result"] == first["result"]
        finally:
            svc.stop()

    def test_entry_cap_evicts(self, h):
        svc = PartitionService(
            ServiceConfig(port=0, workers=1, batch_window=0.0, cache_max_entries=2)
        ).start()
        try:
            client = ServiceClient(url=svc.url, timeout=120.0)
            client.wait_ready(timeout=10.0)
            for seed in range(4):
                client.partition(h, engine="fm", settings={"seed": seed})
            metrics = client.metrics()
            assert metrics["cache"]["entries"] <= 2
            assert metrics["cache"]["evictions"] >= 2
        finally:
            svc.stop()


MALFORMED_BODIES = [
    pytest.param(b"{not json", "invalid JSON", id="syntax"),
    pytest.param(b"[1, 2, 3]", "must be a JSON object", id="non-object"),
    pytest.param(b'{"op": "partition"}', "missing the 'hypergraph' key", id="no-graph"),
    pytest.param(
        b'{"op": "shred", "hypergraph": {}}', "unknown op", id="unknown-op"
    ),
    pytest.param(
        json.dumps(
            {"op": "partition", "engine": "cplex", "hypergraph": {"vertices": [], "edges": []}}
        ).encode(),
        "unknown engine 'cplex'",
        id="unknown-engine",
    ),
    pytest.param(
        json.dumps(
            {
                "op": "partition",
                "hypergraph": {"vertices": [["a", 1], ["b", 1]], "edges": []},
                "settings": {"starts": "many"},
            }
        ).encode(),
        "settings.starts must be an integer",
        id="mistyped-setting",
    ),
    pytest.param(
        json.dumps(
            {
                "op": "partition",
                "hypergraph": {"vertices": [["a", 1], ["b", 1]], "edges": []},
                "settings": {"granularity": 3},
            }
        ).encode(),
        "unknown settings key",
        id="unknown-setting",
    ),
    pytest.param(
        json.dumps(
            {
                "op": "partition",
                "hypergraph": {"vertices": [["a", 1], ["b", 1]], "edges": []},
                "fanout": 2,
            }
        ).encode(),
        "unknown request key",
        id="unknown-top-key",
    ),
    pytest.param(
        json.dumps(
            {
                "op": "partition",
                "placer": "mincut",
                "hypergraph": {"vertices": [["a", 1], ["b", 1]], "edges": []},
            }
        ).encode(),
        "'placer' is a place-op key",
        id="placer-on-partition",
    ),
    pytest.param(
        json.dumps({"op": "partition", "hypergraph": {"vertices": "x"}}).encode(),
        "hypergraph",
        id="malformed-graph",
    ),
    pytest.param(
        json.dumps(
            {
                "op": "partition",
                "hypergraph": {"vertices": [["a", "heavy"]], "edges": []},
            }
        ).encode(),
        "hypergraph",
        id="non-numeric-weight",
    ),
    pytest.param(
        json.dumps(
            {"op": "partition", "hypergraph": {"vertices": [["a", 1]], "edges": []}}
        ).encode(),
        "at least 2",
        id="too-small",
    ),
]


class TestMalformedRequests:
    @pytest.mark.parametrize("raw,needle", MALFORMED_BODIES)
    def test_structured_400_never_a_traceback(self, service, raw, needle):
        _, client = service
        status, body = _post_raw(client, raw)
        assert status == 400
        decoded = json.loads(body)
        error = decoded["error"]
        assert error["type"] == "RequestError"
        assert needle in error["message"]
        assert error["source"] == "request body"
        text = body.decode()
        assert "Traceback" not in text
        assert 'File "' not in text

    def test_syntax_error_carries_line_context(self, service):
        _, client = service
        status, body = _post_raw(client, b'{\n  "op": "partition",\n  !\n}')
        assert status == 400
        error = json.loads(body)["error"]
        assert error["line"] == 3

    def test_unknown_placer(self, service, h):
        _, client = service
        with pytest.raises(ServiceResponseError) as excinfo:
            client.place(h, placer="dreamplace")
        assert excinfo.value.status == 400
        assert "unknown placer" in excinfo.value.error["message"]

    def test_op_endpoint_mismatch(self, service, h):
        _, client = service
        body = {"op": "place", "hypergraph": hypergraph_to_payload(h)}
        status, raw = _post_raw(client, body, path="/partition")
        assert status == 400
        assert "does not match" in json.loads(raw)["error"]["message"]

    def test_generic_endpoint_accepts_both_ops(self, service, h):
        _, client = service
        status, raw = _post_raw(client, _partition_body(h, engine="fm"), path="/")
        assert status == 200
        assert json.loads(raw)["result"]["op"] == "partition"

    def test_unknown_endpoints_are_structured_404s(self, service):
        _, client = service
        status, raw = client.request_raw("GET", "/nope")
        assert status == 404
        assert json.loads(raw)["error"]["type"] == "NotFound"
        status, raw = client.request_raw("POST", "/shred", b"{}")
        assert status == 404
        assert json.loads(raw)["error"]["type"] == "NotFound"

    def test_malformed_requests_are_counted(self, service):
        _, client = service
        before = client.metrics()["service"]["malformed"]
        _post_raw(client, b"{broken")
        assert client.metrics()["service"]["malformed"] == before + 1


class TestObservability:
    def test_cache_and_dedupe_counters_in_metrics_obs(self, service, h):
        _, client = service
        client.partition(h, engine="fm", settings={"seed": 0})
        client.partition(h, engine="fm", settings={"seed": 0})
        counters = client.metrics()["obs"]["counters"]
        assert counters["server.requests"] >= 2
        assert counters["server.cache.hits"] == 1
        assert counters["server.cache.misses"] >= 1
        assert counters["server.cache.insertions"] == 1
        assert counters["server.executions"] == 1

    def test_worker_obs_snapshots_merge_into_daemon_registry(self, service, h):
        _, client = service
        client.partition(h, engine="algorithm1", settings={"starts": 3, "seed": 0})
        counters = client.metrics()["obs"]["counters"]
        # Engine work recorded inside the forked worker must surface in
        # the daemon's merged registry.
        assert counters.get("algorithm1.runs", 0) >= 1, counters

    def test_eviction_counter_in_obs(self, h):
        svc = PartitionService(
            ServiceConfig(port=0, workers=1, batch_window=0.0, cache_max_entries=1)
        ).start()
        try:
            client = ServiceClient(url=svc.url, timeout=120.0)
            client.wait_ready(timeout=10.0)
            client.partition(h, engine="fm", settings={"seed": 0})
            client.partition(h, engine="fm", settings={"seed": 1})
            counters = client.metrics()["obs"]["counters"]
            assert counters["server.cache.evictions"] >= 1
        finally:
            svc.stop()

    def test_disabled_obs_keeps_always_on_metrics(self, h):
        svc = PartitionService(
            ServiceConfig(port=0, workers=1, batch_window=0.0, obs_enabled=False)
        ).start()
        try:
            client = ServiceClient(url=svc.url, timeout=120.0)
            client.wait_ready(timeout=10.0)
            client.partition(h, engine="fm", settings={"seed": 0})
            client.partition(h, engine="fm", settings={"seed": 0})
            metrics = client.metrics()
            # Zero-cost disabled path: no obs snapshot, nothing recorded
            # in the (inactive) global registry...
            assert metrics["obs"] is None
            assert not obs.is_enabled()
            assert obs.registry().snapshot()["counters"] == {}
            # ...but the always-on tallies still work.
            assert metrics["cache"]["hits"] == 1
            assert metrics["service"]["executions"] == 1
        finally:
            svc.stop()


@pytest.mark.skipif(
    not hasattr(socket_module, "AF_UNIX"),
    reason="AF_UNIX sockets are not available on this platform",
)
class TestUnixSocket:
    def test_serves_over_unix_socket(self, tmp_path, h):
        path = str(tmp_path / "svc.sock")
        svc = PartitionService(
            ServiceConfig(socket_path=path, workers=1, batch_window=0.0)
        ).start()
        try:
            client = ServiceClient(socket_path=path, timeout=120.0)
            health = client.wait_ready(timeout=10.0)
            assert health["transport"] == "unix"
            response = client.partition(h, engine="fm")
            assert response["served"]["cache"] == "miss"
            assert client.partition(h, engine="fm")["served"]["cache"] == "hit"
        finally:
            svc.stop()

    def test_stale_socket_file_is_reclaimed(self, tmp_path, h):
        path = str(tmp_path / "svc.sock")
        first = PartitionService(ServiceConfig(socket_path=path, workers=1)).start()
        # Simulate a crashed daemon: the listener is gone but the socket
        # file stays behind.  shutdown() is joined before close so no
        # serve-loop select() still pins the kernel socket when the
        # second daemon probes it.
        first._httpd.shutdown()
        first._httpd.server_close()
        first._httpd = None  # skip graceful stop(); file stays behind
        second = PartitionService(ServiceConfig(socket_path=path, workers=1)).start()
        try:
            client = ServiceClient(socket_path=path, timeout=120.0)
            client.wait_ready(timeout=10.0)
            assert client.healthz()["status"] == "ok"
        finally:
            second.stop()
            first.broker.stop()

    def test_live_socket_is_not_stolen(self, tmp_path):
        path = str(tmp_path / "svc.sock")
        svc = PartitionService(ServiceConfig(socket_path=path, workers=1)).start()
        try:
            with pytest.raises(ServiceError, match="live server"):
                PartitionService(ServiceConfig(socket_path=path, workers=1)).start()
        finally:
            svc.stop()


class TestPersistenceVerifyFailover:
    """Tier-1 halves of the crash-recovery PR: the in-process state
    round trip, the boundary integrity gate, and client failover
    mechanics — the SIGKILL/subprocess halves live in
    ``tests/test_server_recovery.py`` (chaos-marked)."""

    @pytest.fixture(autouse=True)
    def _no_faults(self):
        faults.configure(None)
        yield
        faults.configure(None)

    def test_healthz_reports_identity(self, service):
        _, client = service
        health = client.healthz()
        assert health["pid"] == os.getpid()  # in-process daemon
        assert isinstance(health["version"], str) and health["version"]
        # started_at is absolute wall time consistent with the uptime.
        assert 0 < health["started_at"] <= time.time()
        assert time.time() - health["started_at"] >= health["uptime_seconds"] - 1.0

    def test_metrics_persist_is_none_without_state_dir(self, service):
        _, client = service
        assert client.metrics()["persist"] is None

    def test_state_round_trips_across_a_graceful_restart(self, tmp_path, h):
        cfg = dict(port=0, workers=1, batch_window=0.0, state_dir=str(tmp_path))
        svc = PartitionService(ServiceConfig(**cfg)).start()
        client = ServiceClient(url=svc.url, timeout=60.0)
        client.wait_ready(timeout=10.0)
        try:
            cold = client.partition(h, engine="fm", settings={"seed": 3})
            assert cold["served"]["cache"] == "miss"
            assert client.metrics()["persist"]["records"] >= 1
        finally:
            svc.stop()

        svc = PartitionService(ServiceConfig(**cfg)).start()
        client = ServiceClient(url=svc.url, timeout=60.0)
        client.wait_ready(timeout=10.0)
        try:
            assert client.metrics()["persist"]["rehydrated_cache"] == 1
            warm = client.partition(h, engine="fm", settings={"seed": 3})
            assert warm["served"]["cache"] == "hit"
            assert json.dumps(warm["result"], sort_keys=True) == json.dumps(
                cold["result"], sort_keys=True
            )
        finally:
            svc.stop()

    def test_verify_gate_turns_corruption_into_a_typed_500(self, service, h):
        svc, client = service
        faults.configure("server.verify=error:1", seed=5)
        with pytest.raises(ServiceResponseError) as excinfo:
            client.partition(h, engine="fm", settings={"seed": 0})
        assert excinfo.value.status == 500
        assert excinfo.value.error_type == "IntegrityError"
        metrics = client.metrics()
        assert metrics["service"]["verify_failures"] == 1
        assert metrics["cache"]["insertions"] == 0

        # Disarmed, the same request executes and serves clean.
        faults.configure(None)
        response = client.partition(h, engine="fm", settings={"seed": 0})
        assert response["served"]["cache"] == "miss"

    def test_no_verify_serves_the_corrupt_result(self, h):
        # What --no-verify buys (and costs): the gate is off, so the
        # damaged body sails through as a 200 — documented escape
        # hatch, not a recommendation.
        svc = PartitionService(
            ServiceConfig(port=0, workers=1, batch_window=0.0, verify_results=False)
        ).start()
        client = ServiceClient(url=svc.url, timeout=60.0)
        client.wait_ready(timeout=10.0)
        try:
            faults.configure("server.verify=error:1", seed=5)
            response = client.partition(h, engine="fm", settings={"seed": 0})
            assert response["served"]["cache"] == "miss"
            assert client.metrics()["service"]["verify_failures"] == 0
        finally:
            faults.configure(None)
            svc.stop()

    def test_client_endpoint_validation(self):
        with pytest.raises(ServiceClientError):
            ServiceClient(endpoints=[])
        with pytest.raises(ServiceClientError):
            ServiceClient(url="http://x:1", endpoints=["http://y:2"])

    def test_refused_connection_fails_over_in_process(self, service, h):
        svc, _ = service
        # Endpoint one is a port nothing listens on; the client must
        # rotate to the live sibling instead of surfacing the refusal.
        probe = socket_module.socket()
        probe.bind(("127.0.0.1", 0))
        dead = f"http://127.0.0.1:{probe.getsockname()[1]}"
        probe.close()
        client = ServiceClient(
            endpoints=[dead, svc.url], timeout=60.0, max_retries=1
        )
        response = client.partition(h, engine="fm", settings={"seed": 0})
        assert response["served"]["cache"] == "miss"
        assert client.failovers == 1
        assert client.active_endpoint == svc.url


class TestInterleavingProperty:
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        plan=st.lists(
            st.tuples(st.integers(0, 1), st.integers(0, 2)), min_size=2, max_size=8
        )
    )
    def test_any_interleaving_matches_sequential_cold_runs(self, service, plan):
        """Concurrent duplicate/distinct mixes == sequential cold runs.

        ``plan`` is a list of (graph index, seed) request specs, fired
        concurrently in arbitrary interleavings.  Whatever mix of cache
        hits, coalesced waits, and fresh executions results, every
        response must carry the cut a sequential cold run produces.
        """
        _, client = service
        graphs = [_graph(edges) for edges in EDGESETS]
        expected = {
            spec: run_engine("fm", graphs[spec[0]], seed=spec[1], starts=10)[0].cutsize
            for spec in set(plan)
        }
        outcomes: list[tuple[tuple[int, int], int]] = []
        errors: list[Exception] = []
        lock = threading.Lock()
        barrier = threading.Barrier(len(plan))

        def fire(spec):
            try:
                barrier.wait(timeout=10)
                response = client.partition(
                    graphs[spec[0]], engine="fm", settings={"seed": spec[1]}
                )
                with lock:
                    outcomes.append((spec, response["result"]["cutsize"]))
            except Exception as exc:
                with lock:
                    errors.append(exc)

        threads = [threading.Thread(target=fire, args=(spec,)) for spec in plan]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors, errors
        assert len(outcomes) == len(plan)
        for spec, cutsize in outcomes:
            assert cutsize == expected[spec]
