"""Edge-case coverage across modules: the paths the main suites skim."""

import random

import pytest

from repro.baselines.simulated_annealing import AnnealingSchedule, simulated_annealing
from repro.baselines.spectral import spectral_bisection
from repro.core.algorithm1 import algorithm1
from repro.core.dual_cut import DualCutError, double_bfs_cut
from repro.core.graph import Graph
from repro.core.hypergraph import Hypergraph
from repro.core.validation import check_graph_cut
from repro.generators.random_hypergraph import random_hypergraph


class TestDoubleBfsModes:
    def path(self, n):
        return Graph(nodes=range(n), edges=[(i, i + 1) for i in range(n - 1)])

    def test_level_mode_valid(self):
        g = self.path(9)
        cut = double_bfs_cut(g, 0, 8, mode="level")
        check_graph_cut(g, cut)
        assert 0 in cut.left and 8 in cut.right

    def test_unknown_mode(self):
        with pytest.raises(DualCutError):
            double_bfs_cut(self.path(3), 0, 2, mode="bogus")

    def test_modes_agree_on_path(self):
        """On a path both disciplines split near the middle."""
        g = self.path(20)
        balanced = double_bfs_cut(g, 0, 19, mode="balanced")
        level = double_bfs_cut(g, 0, 19, mode="level")
        assert abs(len(balanced.left) - len(balanced.right)) <= 2
        assert abs(len(level.left) - len(level.right)) <= 2

    def test_balanced_mode_tames_hub(self):
        """Star + path: the hub side must not swallow everything."""
        g = Graph()
        for i in range(1, 30):
            g.add_edge("hub", f"leaf{i}")
        g.add_edge("hub", "p0")
        for i in range(6):
            g.add_edge(f"p{i}", f"p{i + 1}")
        cut = double_bfs_cut(g, "hub", "p6", mode="balanced")
        check_graph_cut(g, cut)
        # Balanced growth keeps (almost) the whole path tail on p6's side
        # (7 path nodes exist; the hub can never starve the tail).
        assert len(cut.right if "p6" in cut.right else cut.left) >= 5

    def test_rng_tiebreak_varies_start_side(self):
        g = self.path(10)
        sides = set()
        for seed in range(10):
            cut = double_bfs_cut(g, 0, 9, rng=random.Random(seed))
            sides.add(len(cut.left))
        assert sides  # runs without error; sizes recorded


class TestSpectralPaths:
    def test_sparse_solver_branch(self):
        """Above the dense cutoff (600) the Lanczos path is exercised."""
        h = random_hypergraph(650, 900, seed=0, connect=True)
        result = spectral_bisection(h, seed=0)
        assert result.bipartition.cardinality_imbalance <= 1

    def test_two_vertices(self):
        h = Hypergraph(edges={"n": [1, 2]})
        result = spectral_bisection(h)
        assert result.cutsize == 1


class TestAnnealingSchedules:
    def test_freezes_when_no_moves_accepted(self):
        """At tiny temperature with a frozen landscape SA stops early."""
        h = Hypergraph(edges={"a": [1, 2], "b": [3, 4]})
        schedule = AnnealingSchedule(
            initial_temperature=1e-9,
            alpha=0.99,
            moves_per_temperature=10,
            min_temperature=1e-12,
            frozen_after=2,
        )
        result = simulated_annealing(h, schedule=schedule, seed=0)
        assert result.iterations <= 60  # froze long before min_temperature

    def test_calibration_with_downhill_only_landscape(self):
        """All moves improving -> calibration falls back to T0 = 1."""
        h = Hypergraph(edges={f"n{i}": [i, i + 1] for i in range(8)})
        # start from the worst split so most sampled moves are downhill
        from repro.core.partition import Bipartition

        worst = Bipartition(h, set(range(0, 9, 2)), set(range(1, 9, 2)))
        result = simulated_annealing(h, initial=worst, seed=0)
        assert result.cutsize <= worst.cutsize


class TestAlgorithm1Internals:
    def test_isolated_dual_node_start(self):
        """A net sharing no module with others forms an isolated G node;
        starting there must still produce a valid cut."""
        h = Hypergraph(
            edges={"iso": [100, 101], "a": [1, 2], "b": [2, 3], "c": [3, 4]}
        )
        result = algorithm1(h, num_starts=10, seed=0)
        assert result.cutsize <= 1
        bp = result.bipartition
        assert bp.left | bp.right == set(h.vertices)

    def test_intersection_exposed_for_analysis(self):
        h = Hypergraph(edges={"a": [1, 2], "b": [2, 3]})
        result = algorithm1(h, seed=0)
        assert result.intersection.num_nodes == 2
        assert result.intersection.graph.has_edge("a", "b")

    def test_best_start_matches_result(self):
        h = random_hypergraph(40, 60, seed=2, connect=True)
        result = algorithm1(h, num_starts=8, seed=0)
        assert result.best_start.cutsize == min(s.cutsize for s in result.starts)

    def test_weighted_balance_with_free_vertices(self):
        h = Hypergraph(vertices=range(12), edges={"a": [0, 1], "b": [1, 2]})
        h.set_vertex_weight(11, 5.0)
        result = algorithm1(h, num_starts=5, seed=0, weighted_balance=True)
        assert result.bipartition.weight_imbalance_fraction <= 0.6


class TestGraphCornerCases:
    def test_bfs_farthest_on_singleton(self):
        g = Graph(nodes=["x"])
        far, depth = g.bfs_farthest("x")
        assert far == "x" and depth == 0

    def test_induced_empty_subset(self):
        g = Graph(nodes=range(3), edges=[(0, 1)])
        sub = g.induced([])
        assert sub.num_nodes == 0

    def test_eccentricity_isolated(self):
        g = Graph(nodes=["a"])
        assert g.eccentricity("a") == 0
