"""End-to-end tests for Algorithm I."""

import random

import pytest
from hypothesis import given, settings

from repro.core.algorithm1 import Algorithm1Error, algorithm1, run_single_start
from repro.core.hypergraph import Hypergraph
from repro.core.intersection import intersection_graph
from repro.core.validation import brute_force_min_cut, check_bipartition
from tests.conftest import hypergraphs


class TestBasics:
    def test_returns_valid_bipartition(self, small_random_hypergraph):
        result = algorithm1(small_random_hypergraph, num_starts=5, seed=0)
        bp = result.bipartition
        assert bp.left | bp.right == set(small_random_hypergraph.vertices)
        assert bp.left and bp.right
        check_bipartition(bp)

    def test_reproducible_with_seed(self, small_random_hypergraph):
        a = algorithm1(small_random_hypergraph, num_starts=5, seed=42)
        b = algorithm1(small_random_hypergraph, num_starts=5, seed=42)
        assert a.bipartition == b.bipartition
        assert [s.cutsize for s in a.starts] == [s.cutsize for s in b.starts]

    def test_accepts_random_instance_as_seed(self, small_random_hypergraph):
        result = algorithm1(small_random_hypergraph, seed=random.Random(1))
        assert result.cutsize >= 0

    def test_start_records(self, small_random_hypergraph):
        result = algorithm1(small_random_hypergraph, num_starts=7, seed=0)
        assert len(result.starts) == 7
        assert result.cutsize == min(s.cutsize for s in result.starts)
        best = result.best_start
        assert best.cutsize == result.cutsize

    def test_cutsize_property(self, triangle_hypergraph):
        result = algorithm1(triangle_hypergraph, seed=0)
        assert result.cutsize == result.bipartition.cutsize


class TestInputValidation:
    def test_too_few_vertices(self):
        with pytest.raises(Algorithm1Error):
            algorithm1(Hypergraph(vertices=["only"]))
        with pytest.raises(Algorithm1Error):
            algorithm1(Hypergraph())

    def test_bad_num_starts(self, triangle_hypergraph):
        with pytest.raises(Algorithm1Error):
            algorithm1(triangle_hypergraph, num_starts=0)


class TestEdgeCases:
    def test_edgeless_hypergraph(self):
        h = Hypergraph(vertices=range(6))
        result = algorithm1(h, seed=0)
        assert result.cutsize == 0
        assert abs(len(result.bipartition.left) - len(result.bipartition.right)) <= 1

    def test_two_vertices(self):
        h = Hypergraph(edges={"n": [1, 2]})
        result = algorithm1(h, seed=0)
        assert len(result.bipartition.left) == 1
        assert result.cutsize == 1  # the only net must cross

    def test_single_edge_many_free(self):
        h = Hypergraph(vertices=range(10), edges={"n": [0, 1]})
        result = algorithm1(h, seed=0)
        assert result.cutsize in (0, 1)
        assert result.bipartition.left and result.bipartition.right

    def test_disconnected_dual_gives_zero_cut(self):
        h = Hypergraph(
            edges={"a": [1, 2], "b": [2, 3], "x": [10, 11], "y": [11, 12]}
        )
        result = algorithm1(h, seed=0)
        assert result.cutsize == 0
        # each cluster wholly on one side
        bp = result.bipartition
        assert {1, 2, 3} <= bp.left or {1, 2, 3} <= bp.right
        assert {10, 11, 12} <= bp.left or {10, 11, 12} <= bp.right

    def test_many_components_balanced(self):
        h = Hypergraph(edges={f"c{i}": [2 * i, 2 * i + 1] for i in range(7)})
        result = algorithm1(h, seed=0)
        assert result.cutsize == 0
        assert result.bipartition.cardinality_imbalance <= 2

    def test_all_edges_filtered_falls_back(self):
        """If the threshold kills every edge, filtering is disabled."""
        h = Hypergraph(edges={"big1": range(10), "big2": range(5, 15)})
        result = algorithm1(h, seed=0, edge_size_threshold=3)
        assert result.ignored_edges == frozenset()
        assert result.intersection.num_nodes == 2

    def test_filtering_reported(self):
        h = Hypergraph(edges={"small": [1, 2], "small2": [2, 3], "big": range(20)})
        result = algorithm1(h, seed=0, edge_size_threshold=10)
        assert result.ignored_edges == frozenset({"big"})
        assert result.intersection.num_nodes == 2

    def test_threshold_none_disables_filtering(self):
        h = Hypergraph(edges={"small": [1, 2], "big": range(20)})
        result = algorithm1(h, seed=0, edge_size_threshold=None)
        assert result.ignored_edges == frozenset()


class TestQuality:
    def test_optimal_on_figure4(self, figure4_hypergraph):
        result = algorithm1(figure4_hypergraph, num_starts=50, seed=1)
        optimum = brute_force_min_cut(figure4_hypergraph).cutsize
        assert result.cutsize == optimum == 1

    def test_beats_random_on_clustered(self):
        from repro.baselines.random_cut import random_cut
        from repro.generators.netlists import clustered_netlist

        h = clustered_netlist(60, 110, "std_cell", seed=7)
        alg1 = algorithm1(h, num_starts=20, seed=0)
        rand = random_cut(h, num_starts=20, seed=0)
        assert alg1.cutsize < rand.cutsize

    def test_finds_planted_cut(self):
        from repro.generators.difficult import planted_bisection

        inst = planted_bisection(80, 110, crossing_edges=2, seed=3)
        result = algorithm1(inst.hypergraph, num_starts=25, seed=0)
        assert result.cutsize <= 2

    def test_multistart_never_worse(self, small_random_hypergraph):
        one = algorithm1(small_random_hypergraph, num_starts=1, seed=9)
        many = algorithm1(small_random_hypergraph, num_starts=20, seed=9)
        assert many.cutsize <= one.cutsize

    def test_balance_tolerance_prefers_feasible(self):
        from repro.generators.netlists import clustered_netlist

        h = clustered_netlist(80, 150, "pcb", seed=11)
        balanced = algorithm1(h, num_starts=30, seed=0, balance_tolerance=0.2)
        assert balanced.bipartition.weight_imbalance_fraction <= 0.5

    def test_weighted_balance_improves_weight_split(self):
        rng = random.Random(4)
        h = Hypergraph(vertices=range(40))
        for _ in range(70):
            h.add_edge(rng.sample(range(40), rng.choice([2, 3])))
        plain = algorithm1(h, num_starts=10, seed=2)
        weighted = algorithm1(h, num_starts=10, seed=2, weighted_balance=True)
        assert (
            weighted.bipartition.weight_imbalance_fraction
            <= plain.bipartition.weight_imbalance_fraction + 1e-9
        )


class TestWeightedObjective:
    def test_weight_objective_prefers_light_cuts(self):
        # A dumbbell where the narrow waist is one HEAVY net and an
        # alternative wider cut crosses two light nets.
        h = Hypergraph()
        for i in range(4):
            h.add_edge([f"a{i}", f"a{(i + 1) % 4}"], name=f"la{i}")
            h.add_edge([f"b{i}", f"b{(i + 1) % 4}"], name=f"lb{i}")
        h.add_edge(["a0", "b0"], name="heavy", weight=10.0)
        h.add_edge(["a1", "b1"], name="light1", weight=0.1)
        h.add_edge(["a2", "b2"], name="light2", weight=0.1)
        result = algorithm1(
            h, num_starts=30, seed=0, objective="weight", variant="min_loser_weight"
        )
        # cutting the three bridges (weight 10.2) is the edge-count
        # optimum's worst case; weighted mode must avoid paying >= heavy
        assert result.bipartition.weighted_cutsize <= 10.2

    def test_unknown_objective_rejected(self, triangle_hypergraph):
        with pytest.raises(Algorithm1Error):
            algorithm1(triangle_hypergraph, objective="area")

    def test_edges_objective_is_default_ranking(self, small_random_hypergraph):
        a = algorithm1(small_random_hypergraph, num_starts=5, seed=3)
        b = algorithm1(small_random_hypergraph, num_starts=5, seed=3, objective="edges")
        assert a.bipartition == b.bipartition


class TestSingleStart:
    def test_trace_fields(self, figure4_hypergraph):
        ig = intersection_graph(figure4_hypergraph)
        trace = run_single_start(ig, figure4_hypergraph, random.Random(0), start_node="k")
        assert trace.cut.seed_u == "k"
        assert trace.bipartition.left | trace.bipartition.right == set(
            figure4_hypergraph.vertices
        )
        check_bipartition(trace.bipartition)

    def test_variant_passthrough(self, figure4_hypergraph):
        ig = intersection_graph(figure4_hypergraph)
        for variant in ("min_degree", "random_min_degree", "min_loser_weight"):
            trace = run_single_start(
                ig, figure4_hypergraph, random.Random(0), variant=variant
            )
            check_bipartition(trace.bipartition)


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(hypergraphs())
    def test_always_valid_partition(self, h):
        result = algorithm1(h, num_starts=3, seed=0)
        bp = result.bipartition
        assert bp.left | bp.right == set(h.vertices)
        assert not (bp.left & bp.right)
        assert bp.left and bp.right
        check_bipartition(bp)

    @settings(max_examples=25, deadline=None)
    @given(hypergraphs(max_vertices=10, max_edges=10))
    def test_never_worse_than_twice_optimum_plus_slack(self, h):
        """Loose quality sanity on tiny instances (no balance constraint)."""
        result = algorithm1(h, num_starts=10, seed=0)
        optimum = brute_force_min_cut(h).cutsize
        assert result.cutsize >= optimum  # cannot beat the oracle
