"""Tests for netlist, hMETIS and JSON I/O."""

import pytest
from hypothesis import given, settings

from repro.core.hypergraph import Hypergraph
from repro.io import (
    format_hgr,
    format_netlist,
    hypergraph_from_json,
    hypergraph_to_json,
    parse_hgr,
    parse_netlist,
    read_hgr,
    read_json,
    read_netlist,
    write_hgr,
    write_json,
    write_netlist,
)
from repro.io.hgr import HgrFormatError
from repro.io.netlist import NetlistFormatError
from tests.conftest import FIGURE4_EDGES, hypergraphs

PAPER_NETLIST_TEXT = """\
# The paper's Figure 4 netlist (reconstruction)
a: 1 2 11
b: 2 4 11
c: 1 3 4 12
d: 2 4 12
e: 2 11 12
f: 1 11 12
g: 3 5 6 7
h: 3 5 8
i: 5 8 9 10
j: 6 7 9 10
k: 6 8 10
l: 7 9 10
"""


class TestNetlistFormat:
    def test_parse_paper_netlist(self):
        h = parse_netlist(PAPER_NETLIST_TEXT)
        assert h.num_vertices == 12
        assert h.num_edges == 12
        assert h == Hypergraph(edges=FIGURE4_EDGES)

    def test_round_trip(self):
        h = Hypergraph(edges=FIGURE4_EDGES)
        assert parse_netlist(format_netlist(h)) == h

    def test_weights_round_trip(self):
        h = Hypergraph()
        h.add_edge([1, 2], name="clk", weight=4.0)
        h.set_vertex_weight(1, 2.5)
        h.add_vertex(99, 3.0)
        back = parse_netlist(format_netlist(h))
        assert back.edge_weight("clk") == 4.0
        assert back.vertex_weight(1) == 2.5
        assert back.vertex_weight(99) == 3.0

    def test_comments_and_blanks(self):
        h = parse_netlist("# header\n\na: 1 2  # trailing\n")
        assert h.num_edges == 1

    def test_string_modules(self):
        h = parse_netlist("n: alu0 alu1 reg\n")
        assert set(h.edge_members("n")) == {"alu0", "alu1", "reg"}

    def test_signal_weight_suffix(self):
        h = parse_netlist("clk(4.5): 1 2\n")
        assert h.edge_weight("clk") == 4.5

    @pytest.mark.parametrize(
        "text",
        [
            "no colon here\n",
            "a:\n",
            ": 1 2\n",
            "a: 1\na: 2\n",
            "clk(x): 1 2\n",
            "%module 1 weight=abc\n",
            "%module 1\n",
        ],
    )
    def test_malformed_rejected(self, text):
        with pytest.raises(NetlistFormatError):
            parse_netlist(text)

    def test_error_mentions_line_number(self):
        with pytest.raises(NetlistFormatError, match="line 3"):
            parse_netlist("a: 1 2\nb: 2 3\nbroken\n")

    def test_file_round_trip(self, tmp_path):
        h = Hypergraph(edges=FIGURE4_EDGES)
        path = tmp_path / "fig4.netlist"
        write_netlist(h, path)
        assert read_netlist(path) == h


class TestHgrFormat:
    def test_minimal(self):
        h = parse_hgr("2 3\n1 2\n2 3\n")
        assert h.num_vertices == 3
        assert h.num_edges == 2
        assert h.edge_members("net1") == frozenset({1, 2})

    def test_comments_skipped(self):
        h = parse_hgr("% hMETIS file\n1 2\n1 2\n")
        assert h.num_edges == 1

    def test_edge_weights(self):
        h = parse_hgr("1 2 1\n3.5 1 2\n")
        assert h.edge_weight("net1") == 3.5

    def test_vertex_weights(self):
        h = parse_hgr("1 2 10\n1 2\n4\n7\n")
        assert h.vertex_weight(1) == 4.0
        assert h.vertex_weight(2) == 7.0

    def test_both_weights(self):
        h = parse_hgr("1 2 11\n2 1 2\n4\n7\n")
        assert h.edge_weight("net1") == 2.0
        assert h.vertex_weight(2) == 7.0

    @pytest.mark.parametrize(
        "text",
        [
            "",
            "abc def\n",
            "1 2 99\n1 2\n",
            "2 2\n1 2\n",  # missing second edge line
            "1 2\n1 5\n",  # pin out of range
            "1 2\n\n",  # blank edge line collapses -> missing
            "1 2 10\n1 2\nxyz\n",  # bad vertex weight
            "1 2 1\n2\n",  # weight but no pin... weight=2, no pins
        ],
    )
    def test_malformed_rejected(self, text):
        with pytest.raises(HgrFormatError):
            parse_hgr(text)

    def test_round_trip_plain(self):
        h = Hypergraph(edges=[[1, 2], [2, 3, 4]])
        text, index = format_hgr(h)
        back = parse_hgr(text)
        assert back.num_edges == h.num_edges
        assert back.num_vertices == h.num_vertices
        # structure preserved under the index mapping
        for name, members in h.edges.items():
            mapped = frozenset(index[v] for v in members)
            assert mapped in back.edges.values()

    def test_round_trip_weighted(self):
        h = Hypergraph()
        h.add_edge([1, 2], name="x", weight=2.5)
        h.set_vertex_weight(1, 3.0)
        text, index = format_hgr(h)
        assert text.splitlines()[0].endswith("11")
        back = parse_hgr(text)
        assert back.edge_weight("net1") == 2.5
        assert back.vertex_weight(index[1]) == 3.0

    def test_string_labels_mapped(self):
        h = Hypergraph(edges={"n": ["alu", "reg"]})
        text, index = format_hgr(h)
        assert set(index.values()) == {1, 2}
        back = parse_hgr(text)
        assert back.num_vertices == 2

    def test_file_round_trip(self, tmp_path):
        h = Hypergraph(edges=[[1, 2], [2, 3]])
        path = tmp_path / "test.hgr"
        index = write_hgr(h, path)
        back = read_hgr(path)
        assert back.num_edges == 2
        assert index[1] in back


class TestJsonFormat:
    def test_round_trip(self):
        h = Hypergraph(edges=FIGURE4_EDGES)
        assert hypergraph_from_json(hypergraph_to_json(h)) == h

    def test_weights_and_names(self):
        h = Hypergraph()
        h.add_edge([1, 2], name="clk", weight=4.0)
        h.set_vertex_weight(1, 2.5)
        back = hypergraph_from_json(hypergraph_to_json(h))
        assert back == h

    def test_tuple_labels(self):
        h = Hypergraph()
        h.add_edge([("mod", 1), ("mod", 2)], name=("chain", "m", 0))
        back = hypergraph_from_json(hypergraph_to_json(h))
        assert back == h
        assert back.has_edge(("chain", "m", 0))

    def test_bad_payload(self):
        with pytest.raises(ValueError):
            hypergraph_from_json("[1, 2, 3]")
        with pytest.raises(ValueError):
            hypergraph_from_json('{"vertices": []}')

    def test_file_round_trip(self, tmp_path):
        h = Hypergraph(edges=FIGURE4_EDGES)
        path = tmp_path / "h.json"
        write_json(h, path)
        assert read_json(path) == h

    @settings(max_examples=25)
    @given(hypergraphs(weighted=True))
    def test_property_round_trip(self, h):
        back = hypergraph_from_json(hypergraph_to_json(h))
        assert back.num_vertices == h.num_vertices
        assert back.edges == h.edges
        for v in h.vertices:
            assert back.vertex_weight(v) == pytest.approx(h.vertex_weight(v))
