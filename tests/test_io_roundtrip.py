"""Round-trip tests for the hMETIS ``.hgr`` and JSON hypergraph formats.

The hgr format is lossy by design (labels map onto ``1..n``, edge names
are dropped), so its round-trip contract is *structural*: the written
file parses back to an isomorphic hypergraph under the returned index
map, and — the asymmetry this suite pinned down — writing integer-labeled
``1..n`` hypergraphs is the identity, so parse → format reaches a fixed
point after one trip instead of permuting labels forever (labels used to
be ordered by ``repr``, interleaving ``1, 10, 11, ..., 2``).

The JSON format is the lossless one: labels (including tuples), names,
weights, and vertex order all survive exactly.
"""

from __future__ import annotations

import random

import pytest

from repro.core.hypergraph import Hypergraph
from repro.io.hgr import HgrFormatError, format_hgr, parse_hgr
from repro.io.json_io import hypergraph_from_json, hypergraph_to_json


def random_hgr_instance(seed: int, weighted: bool) -> Hypergraph:
    rng = random.Random(seed)
    n = rng.randint(2, 15)
    h = Hypergraph(vertices=range(1, n + 1))
    for i in range(rng.randint(1, 12)):
        size = rng.randint(1, min(5, n))
        weight = rng.choice([1.0, 2.0, 0.5, 3.25]) if weighted else 1.0
        h.add_edge(rng.sample(range(1, n + 1), size), name=f"net{i + 1}", weight=weight)
    if weighted:
        for v in h.vertices:
            h.set_vertex_weight(v, rng.choice([1.0, 2.0, 4.5]))
    return h


def structural_signature(h: Hypergraph):
    """Label-independent content: weighted vertices + weighted pin sets."""
    vertices = sorted((repr(v), h.vertex_weight(v)) for v in h.vertices)
    edges = sorted(
        (tuple(sorted(map(repr, h.edge_members(e)))), h.edge_weight(e))
        for e in h.edge_names
    )
    return vertices, edges


class TestHgrParsing:
    def test_one_indexing(self):
        h = parse_hgr("2 3\n1 2\n2 3\n")
        assert set(h.vertices) == {1, 2, 3}
        assert h.edge_members("net1") == frozenset({1, 2})

    def test_comments_anywhere(self):
        text = "% header comment\n2 3\n% mid comment\n1 2\n2 3\n% trailing\n"
        assert parse_hgr(text).num_edges == 2

    def test_fmt_codes(self):
        unit = parse_hgr("1 2\n1 2\n")
        assert unit.edge_weight("net1") == 1.0
        ew = parse_hgr("1 2 1\n2.5 1 2\n")
        assert ew.edge_weight("net1") == 2.5
        vw = parse_hgr("1 2 10\n1 2\n3\n4\n")
        assert (vw.vertex_weight(1), vw.vertex_weight(2)) == (3.0, 4.0)
        both = parse_hgr("1 2 11\n2.5 1 2\n3\n4\n")
        assert both.edge_weight("net1") == 2.5
        assert both.vertex_weight(2) == 4.0

    def test_pin_out_of_range_rejected(self):
        with pytest.raises(HgrFormatError, match="out of range"):
            parse_hgr("1 2\n1 3\n")


class TestHgrRoundTrip:
    def test_identity_on_canonical_integer_labels(self):
        """For 1..n integer labels the write is the identity mapping and
        parse -> format is a fixed point — the regression this PR fixed."""
        for seed in range(30):
            h = random_hgr_instance(seed, weighted=bool(seed % 2))
            text, index = format_hgr(h)
            assert index == {v: v for v in h.vertices}
            back = parse_hgr(text)
            text2, index2 = format_hgr(back)
            assert text2 == text
            assert index2 == index

    def test_structure_preserved_under_index_map(self):
        for seed in range(30):
            h = random_hgr_instance(seed, weighted=bool(seed % 2))
            text, index = format_hgr(h)
            back = parse_hgr(text)
            inverse = {i: v for v, i in index.items()}
            relabeled = sorted(
                (repr(inverse[v]), back.vertex_weight(v)) for v in back.vertices
            )
            relabeled_edges = sorted(
                (
                    tuple(sorted(repr(inverse[p]) for p in back.edge_members(e))),
                    back.edge_weight(e),
                )
                for e in back.edge_names
            )
            assert (relabeled, relabeled_edges) == structural_signature(h)

    def test_minimal_fmt_code_chosen(self):
        unit = Hypergraph(edges={"a": [1, 2]})
        assert format_hgr(unit)[0].splitlines()[0] == "1 2"
        ew = Hypergraph()
        ew.add_edge([1, 2], name="a", weight=2.0)
        assert format_hgr(ew)[0].splitlines()[0] == "1 2 1"
        vw = Hypergraph(edges={"a": [1, 2]})
        vw.set_vertex_weight(1, 3.0)
        assert format_hgr(vw)[0].splitlines()[0] == "1 2 10"
        both = Hypergraph()
        both.add_edge([1, 2], name="a", weight=2.0)
        both.set_vertex_weight(1, 3.0)
        assert format_hgr(both)[0].splitlines()[0] == "1 2 11"

    def test_mixed_label_types_fall_back_to_repr_order(self):
        h = Hypergraph(edges={"a": [1, "x"], "b": ["x", (2, 3)]})
        text, index = format_hgr(h)
        back = parse_hgr(text)
        assert back.num_vertices == h.num_vertices
        assert back.num_edges == 2
        # Structure survives under the map even without a natural order.
        inverse = {i: v for v, i in index.items()}
        got = sorted(
            tuple(sorted(repr(inverse[p]) for p in back.edge_members(e)))
            for e in back.edge_names
        )
        want = sorted(
            tuple(sorted(map(repr, h.edge_members(e)))) for e in h.edge_names
        )
        assert got == want

    def test_string_digit_labels_round_trip(self):
        """Homogeneous string labels sort naturally as strings."""
        h = Hypergraph(edges={"a": ["m1", "m2"], "b": ["m2", "m10"]})
        text, index = format_hgr(h)
        back = parse_hgr(text)
        text2, _ = format_hgr(back)
        assert text2 == text


class TestJsonRoundTrip:
    def test_lossless_including_names_and_weights(self):
        for seed in range(30):
            h = random_hgr_instance(seed, weighted=bool(seed % 2))
            back = hypergraph_from_json(hypergraph_to_json(h))
            assert set(back.vertices) == set(h.vertices)
            assert back.edge_names == h.edge_names
            for e in h.edge_names:
                assert back.edge_members(e) == h.edge_members(e)
                assert back.edge_weight(e) == h.edge_weight(e)
            for v in h.vertices:
                assert back.vertex_weight(v) == h.vertex_weight(v)

    def test_vertex_order_preserved(self):
        h = Hypergraph(vertices=[3, 1, 2])
        h.add_edge([3, 1], name="n")
        back = hypergraph_from_json(hypergraph_to_json(h))
        assert list(back.vertices) == [3, 1, 2]

    def test_tuple_labels_restored(self):
        h = Hypergraph(edges={("chain", "m", 0): [("m", 1), ("m", 2)]})
        back = hypergraph_from_json(hypergraph_to_json(h))
        assert back.edge_names == h.edge_names
        name = next(iter(back.edge_names))
        assert isinstance(name, tuple)
        assert back.edge_members(name) == frozenset({("m", 1), ("m", 2)})

    def test_isolated_vertices_survive(self):
        h = Hypergraph(vertices=["a", "b", "c"])
        h.add_edge(["a", "b"], name="n")
        back = hypergraph_from_json(hypergraph_to_json(h))
        assert set(back.vertices) == {"a", "b", "c"}

    def test_malformed_payload_rejected(self):
        with pytest.raises(ValueError, match="'vertices' and 'edges'"):
            hypergraph_from_json("{}")
