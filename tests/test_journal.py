"""Run-journal tests: format, durability, and crash/resume invariance.

The core contract under test: a resumed fault-free run produces a
payload identical (modulo timing fields and the ``supervision`` block)
to an uninterrupted one, **for any interrupt point** — including a kill
mid-append that leaves a partial JSON line — and for any worker count.
The interrupt-point half is a hypothesis property (truncate the journal
at an arbitrary byte past the header); the real-SIGKILL half lives in
the chaos-marked test at the bottom.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import QUICK_SUITE, run_bench
from repro.core.algorithm1 import Algorithm1Error, algorithm1
from repro.core.hypergraph import Hypergraph
from repro.generators.netlists import clustered_netlist
from repro.runtime import (
    JournalError,
    JournalFingerprintError,
    JournalFormatError,
    RunJournal,
    settings_fingerprint,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

SETTINGS = {"seed": 7, "starts": 3, "cases": ["a", "b"]}

#: Payload fields that legitimately differ between an uninterrupted run
#: and a resumed one: wall-clock noise and what the supervisor had to do.
TIMING_FIELDS = ("seconds", "spans", "phases")


def stripped(payload: dict) -> dict:
    out = json.loads(json.dumps(payload))
    out.pop("supervision", None)
    for entry in out["results"]:
        for field in TIMING_FIELDS:
            entry.pop(field, None)
    out.get("obs", {}).pop("spans", None)
    return out


# ----------------------------------------------------------------------
# RunJournal unit behaviour


class TestRunJournal:
    def test_create_record_resume_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal.create(path, "bench", SETTINGS) as journal:
            journal.record(["a", "fm"], {"ok": True, "n": 1})
            journal.record(["a", "kl"], {"ok": False})
        resumed, records = RunJournal.resume(path, "bench", SETTINGS)
        resumed.close()
        assert records == [
            (["a", "fm"], {"ok": True, "n": 1}),
            (["a", "kl"], {"ok": False}),
        ]

    def test_records_are_durable_on_disk_before_close(self, tmp_path):
        # fsync-per-record: the bytes must be in the file even while the
        # journal is still open (a SIGKILL never reaches close()).
        path = tmp_path / "run.jsonl"
        journal = RunJournal.create(path, "bench", SETTINGS)
        journal.record("k", 1)
        lines = path.read_bytes().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1]) == {"key": "k", "value": 1}
        journal.close()

    def test_resume_keeps_appending_to_the_same_file(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal.create(path, "bench", SETTINGS) as journal:
            journal.record("first", 1)
        with RunJournal.resume(path, "bench", SETTINGS)[0] as journal:
            journal.record("second", 2)
        _, records = RunJournal.resume(path, "bench", SETTINGS)
        assert [k for k, _ in records] == ["first", "second"]

    def test_truncated_final_line_is_dropped_and_truncated_away(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal.create(path, "bench", SETTINGS) as journal:
            journal.record("done", 1)
        durable = path.read_bytes()
        path.write_bytes(durable + b'{"key": "half')
        _, records = RunJournal.resume(path, "bench", SETTINGS)
        assert records == [("done", 1)]
        assert path.read_bytes() == durable  # partial tail physically removed

    def test_malformed_middle_line_raises_with_line_number(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal.create(path, "bench", SETTINGS) as journal:
            journal.record("a", 1)
            journal.record("b", 2)
        lines = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(lines[0] + b"not json\n" + lines[2])
        with pytest.raises(JournalFormatError, match="line 2"):
            RunJournal.resume(path, "bench", SETTINGS)

    def test_fingerprint_mismatch_names_the_changed_settings(self, tmp_path):
        path = tmp_path / "run.jsonl"
        RunJournal.create(path, "bench", SETTINGS).close()
        changed = dict(SETTINGS, seed=8)
        with pytest.raises(JournalFingerprintError, match="seed: 7 -> 8"):
            RunJournal.resume(path, "bench", changed)

    def test_task_mismatch_is_rejected(self, tmp_path):
        path = tmp_path / "run.jsonl"
        RunJournal.create(path, "partition", SETTINGS).close()
        with pytest.raises(JournalFingerprintError, match="'partition' run"):
            RunJournal.resume(path, "bench", SETTINGS)

    def test_empty_and_headerless_files_are_rejected(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_bytes(b"")
        with pytest.raises(JournalFormatError, match="empty journal"):
            RunJournal.resume(path, "bench", SETTINGS)
        path.write_bytes(b'{"key": "no header"}\n{"key": "x"}\n')
        with pytest.raises(JournalFormatError, match="not a journal header"):
            RunJournal.resume(path, "bench", SETTINGS)

    def test_unserializable_record_raises_journal_error(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal.create(path, "bench", SETTINGS) as journal:
            with pytest.raises(JournalError, match="not JSON-serializable"):
                journal.record("k", object())

    def test_fingerprint_is_order_independent(self):
        assert settings_fingerprint({"a": 1, "b": 2}) == settings_fingerprint(
            {"b": 2, "a": 1}
        )
        assert settings_fingerprint({"a": 1}) != settings_fingerprint({"a": 2})


# ----------------------------------------------------------------------
# Bench resume: interrupt-point invariance


BENCH_KWARGS = dict(
    cases=QUICK_SUITE[:1],
    engines=("algorithm1", "random"),
    seed=3,
    starts=2,
    repeats=1,
)


@pytest.fixture(scope="module")
def bench_reference(tmp_path_factory):
    """One uninterrupted journaled run: (stripped payload, journal bytes)."""
    path = tmp_path_factory.mktemp("journal") / "ref.jsonl"
    payload = run_bench("ref", journal_path=path, **BENCH_KWARGS)
    return stripped(payload), path.read_bytes()


class TestBenchResume:
    def test_resume_at_every_record_boundary_is_invariant(
        self, bench_reference, tmp_path
    ):
        reference, journal_bytes = bench_reference
        lines = journal_bytes.splitlines(keepends=True)
        for keep in range(1, len(lines) + 1):
            path = tmp_path / f"cut{keep}.jsonl"
            path.write_bytes(b"".join(lines[:keep]))
            seen = {}
            payload = run_bench(
                "ref",
                resume_path=path,
                on_resume=lambda r, p: seen.update(replayed=r, pending=p),
                **BENCH_KWARGS,
            )
            assert stripped(payload) == reference
            assert seen["replayed"] == keep - 1
            assert seen["pending"] == len(reference["results"]) - (keep - 1)

    @settings(max_examples=10, deadline=None)
    @given(data=st.data())
    def test_resume_at_any_byte_past_the_header_is_invariant(
        self, bench_reference, tmp_path_factory, data
    ):
        reference, journal_bytes = bench_reference
        header_end = journal_bytes.index(b"\n") + 1
        cut = data.draw(
            st.integers(min_value=header_end, max_value=len(journal_bytes))
        )
        path = tmp_path_factory.mktemp("cut") / "cut.jsonl"
        path.write_bytes(journal_bytes[:cut])
        payload = run_bench("ref", resume_path=path, **BENCH_KWARGS)
        assert stripped(payload) == reference

    def test_resume_of_complete_journal_is_a_noop(self, bench_reference, tmp_path):
        reference, journal_bytes = bench_reference
        path = tmp_path / "full.jsonl"
        path.write_bytes(journal_bytes)
        seen = {}
        payload = run_bench(
            "ref",
            resume_path=path,
            on_resume=lambda r, p: seen.update(replayed=r, pending=p),
            **BENCH_KWARGS,
        )
        assert stripped(payload) == reference
        assert seen == {"replayed": len(reference["results"]), "pending": 0}

    def test_resume_is_worker_count_invariant(self, bench_reference, tmp_path):
        # The journal was written sequentially; resuming under a pool
        # must yield the same results (the settings block honestly
        # records the differing execution topology, which cannot affect
        # the numbers — normalize it before comparing).
        reference, journal_bytes = bench_reference
        lines = journal_bytes.splitlines(keepends=True)
        path = tmp_path / "cut.jsonl"
        path.write_bytes(b"".join(lines[:2]))
        payload = run_bench("ref", resume_path=path, parallel=2, **BENCH_KWARGS)
        current = stripped(payload)
        expected = json.loads(json.dumps(reference))
        for topology in ("parallel", "task_timeout", "max_retries"):
            current["settings"].pop(topology, None)
            expected["settings"].pop(topology, None)
        assert current == expected

    def test_resume_with_changed_settings_is_refused(self, bench_reference, tmp_path):
        _, journal_bytes = bench_reference
        path = tmp_path / "full.jsonl"
        path.write_bytes(journal_bytes)
        kwargs = dict(BENCH_KWARGS, seed=4)
        with pytest.raises(JournalFingerprintError, match="seed"):
            run_bench("ref", resume_path=path, **kwargs)

    def test_journal_and_resume_path_conflict_is_rejected(self, tmp_path):
        from repro.bench import BenchError

        with pytest.raises(BenchError, match="paths differ"):
            run_bench(
                "x",
                journal_path=tmp_path / "a.jsonl",
                resume_path=tmp_path / "b.jsonl",
                **BENCH_KWARGS,
            )


# ----------------------------------------------------------------------
# Algorithm I multi-start resume


@pytest.fixture(scope="module")
def instance():
    return clustered_netlist(70, 120, technology="std_cell", seed=3)


class TestAlgorithm1Resume:
    def run(self, h, **kwargs):
        return algorithm1(h, num_starts=6, seed=5, **kwargs)

    def test_pool_path_resume_matches_uninterrupted(self, instance, tmp_path):
        reference = self.run(instance, parallel=2)
        path = tmp_path / "p.jsonl"
        self.run(instance, parallel=2, journal_path=path)
        lines = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(b"".join(lines[:3]))  # header + 2 starts survive
        resumed = self.run(instance, parallel=2, resume_path=path)
        assert resumed.starts == reference.starts
        assert resumed.bipartition.left == reference.bipartition.left
        assert resumed.cutsize == reference.cutsize
        assert not resumed.degraded

    def test_incore_path_resume_matches_uninterrupted(self, instance, tmp_path):
        reference = self.run(instance, parallel=1)
        path = tmp_path / "p1.jsonl"
        self.run(instance, parallel=1, journal_path=path)
        lines = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(b"".join(lines[:4]))
        resumed = self.run(instance, parallel=1, resume_path=path)
        assert resumed.starts == reference.starts
        assert resumed.bipartition.left == reference.bipartition.left

    def test_fully_recorded_journal_replays_without_running(self, instance, tmp_path):
        path = tmp_path / "p.jsonl"
        reference = self.run(instance, parallel=2, journal_path=path)
        resumed = self.run(instance, parallel=2, resume_path=path)
        assert resumed.starts == reference.starts
        assert resumed.cutsize == reference.cutsize
        assert resumed.counters["parallel_workers"] == 0  # nothing re-ran

    def test_resume_binds_to_the_hypergraph(self, instance, tmp_path):
        path = tmp_path / "p.jsonl"
        self.run(instance, parallel=2, journal_path=path)
        other = clustered_netlist(70, 120, technology="std_cell", seed=4)
        with pytest.raises(JournalFingerprintError, match="hypergraph"):
            self.run(other, parallel=2, resume_path=path)

    def test_journal_requires_parallel_seed_contract(self, instance, tmp_path):
        with pytest.raises(Algorithm1Error, match="requires parallel"):
            self.run(instance, journal_path=tmp_path / "p.jsonl")

    def test_journal_rejects_random_instance_seed(self, instance, tmp_path):
        import random

        with pytest.raises(Algorithm1Error, match="integer"):
            algorithm1(
                instance,
                num_starts=4,
                seed=random.Random(1),
                parallel=1,
                journal_path=tmp_path / "p.jsonl",
            )

    def test_early_return_paths_still_write_a_resumable_journal(self, tmp_path):
        # A disconnected dual takes the component-packing early return
        # before any start runs.  --journal must still leave a (header
        # only) journal behind, and resuming it must recompute the same
        # deterministic answer — not FileNotFoundError.
        h = Hypergraph(edges={"a": ["m1", "m2"], "b": ["m3", "m4"]})
        path = tmp_path / "packed.jsonl"
        first = algorithm1(h, num_starts=4, seed=5, parallel=1, journal_path=path)
        assert path.exists()
        assert len(path.read_bytes().splitlines()) == 1  # header, no starts
        resumed = algorithm1(h, num_starts=4, seed=5, parallel=1, resume_path=path)
        assert resumed.cutsize == first.cutsize == 0
        assert resumed.bipartition.left == first.bipartition.left
        other = Hypergraph(edges={"a": ["m1", "m2"], "c": ["m5", "m6"]})
        with pytest.raises(JournalFingerprintError, match="hypergraph"):
            algorithm1(other, num_starts=4, seed=5, parallel=1, resume_path=path)


# ----------------------------------------------------------------------
# The acceptance differential: a real SIGKILL at an arbitrary pair
# boundary, resumed through the CLI.


@pytest.mark.chaos
class TestSigkillResume:
    def test_sigkilled_bench_resumes_to_identical_payload(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        journal = tmp_path / "run.jsonl"
        args = [
            sys.executable,
            "-m",
            "repro.cli",
            "bench",
            "--quick",
            "--parallel",
            "2",
            "--starts",
            "2",
            "--repeats",
            "1",
            "--seed",
            "3",
            "--label",
            "kill",
        ]

        # Reference: the same run, uninterrupted.
        ref_out = tmp_path / "ref.json"
        proc = subprocess.run(
            args + ["--out", str(ref_out)],
            capture_output=True,
            text=True,
            env=env,
            cwd=tmp_path,
            timeout=600,
        )
        assert proc.returncode == 0, proc.stderr
        reference = stripped(json.loads(ref_out.read_text()))

        # Victim: SIGKILL once the journal holds at least two completed
        # pairs (an arbitrary pair boundary — whatever the scheduler
        # reached first).
        victim = subprocess.Popen(
            args + ["--journal", str(journal), "--out", str(tmp_path / "v.json")],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            env=env,
            cwd=tmp_path,
        )
        try:
            deadline = time.monotonic() + 300
            while time.monotonic() < deadline:
                if journal.exists() and len(journal.read_bytes().splitlines()) >= 3:
                    break
                if victim.poll() is not None:
                    break
                time.sleep(0.02)
            else:
                pytest.fail("journal never accumulated records")
        finally:
            victim.kill()
            victim.wait(timeout=60)

        recorded = len(journal.read_bytes().splitlines()) - 1
        assert recorded >= 1

        resumed_out = tmp_path / "resumed.json"
        proc = subprocess.run(
            args + ["--resume", str(journal), "--out", str(resumed_out)],
            capture_output=True,
            text=True,
            env=env,
            cwd=tmp_path,
            timeout=600,
        )
        assert proc.returncode == 0, proc.stderr
        assert "resume:" in proc.stderr and "replayed" in proc.stderr
        assert stripped(json.loads(resumed_out.read_text())) == reference
