"""Tests for the invariant checkers and brute-force oracle."""

import pytest

from repro.core.boundary import BoundaryGraph
from repro.core.complete_cut import CompletionResult
from repro.core.dual_cut import GraphCut
from repro.core.graph import Graph
from repro.core.hypergraph import Hypergraph
from repro.core.partition import Bipartition
from repro.core.validation import (
    InvariantViolation,
    brute_force_min_cut,
    check_bipartition,
    check_completion,
    check_graph_cut,
)


def square_graph():
    return Graph(nodes=[1, 2, 3, 4], edges=[(1, 2), (2, 3), (3, 4), (4, 1)])


class TestCheckGraphCut:
    def test_valid(self):
        g = square_graph()
        cut = GraphCut(
            left=frozenset({1, 2}),
            right=frozenset({3, 4}),
            boundary_left=frozenset({1, 2}),
            boundary_right=frozenset({3, 4}),
            seed_u=1,
            seed_v=3,
        )
        check_graph_cut(g, cut)

    def test_overlap_detected(self):
        g = square_graph()
        cut = GraphCut(
            left=frozenset({1, 2, 3}),
            right=frozenset({3, 4}),
            boundary_left=frozenset(),
            boundary_right=frozenset(),
            seed_u=1,
            seed_v=4,
        )
        with pytest.raises(InvariantViolation):
            check_graph_cut(g, cut)

    def test_wrong_boundary_detected(self):
        g = square_graph()
        cut = GraphCut(
            left=frozenset({1, 2}),
            right=frozenset({3, 4}),
            boundary_left=frozenset(),  # 1 and 2 ARE adjacent across
            boundary_right=frozenset({3, 4}),
            seed_u=1,
            seed_v=3,
        )
        with pytest.raises(InvariantViolation):
            check_graph_cut(g, cut)

    def test_incomplete_cover_detected(self):
        g = square_graph()
        cut = GraphCut(
            left=frozenset({1}),
            right=frozenset({3, 4}),
            boundary_left=frozenset(),
            boundary_right=frozenset(),
            seed_u=1,
            seed_v=3,
        )
        with pytest.raises(InvariantViolation):
            check_graph_cut(g, cut)


class TestCheckCompletion:
    def make_bg(self):
        g = Graph(nodes=["a", "b"], edges=[("a", "b")])
        return BoundaryGraph(graph=g, left=frozenset({"a"}), right=frozenset({"b"}))

    def test_valid(self):
        bg = self.make_bg()
        check_completion(
            bg,
            CompletionResult(
                winners_left=frozenset({"a"}),
                winners_right=frozenset(),
                losers=frozenset({"b"}),
            ),
        )

    def test_fact_violation_detected(self):
        bg = self.make_bg()
        with pytest.raises(InvariantViolation):
            check_completion(
                bg,
                CompletionResult(
                    winners_left=frozenset({"a"}),
                    winners_right=frozenset({"b"}),  # adjacent winners!
                    losers=frozenset(),
                ),
            )

    def test_incomplete_labeling_detected(self):
        bg = self.make_bg()
        with pytest.raises(InvariantViolation):
            check_completion(
                bg,
                CompletionResult(
                    winners_left=frozenset({"a"}),
                    winners_right=frozenset(),
                    losers=frozenset(),
                ),
            )

    def test_wrong_side_detected(self):
        bg = self.make_bg()
        with pytest.raises(InvariantViolation):
            check_completion(
                bg,
                CompletionResult(
                    winners_left=frozenset({"b"}),  # b is a right node
                    winners_right=frozenset(),
                    losers=frozenset({"a"}),
                ),
            )


class TestCheckBipartition:
    def test_valid(self):
        h = Hypergraph(edges={"n": [1, 2]})
        check_bipartition(Bipartition(h, {1}, {2}))


class TestBruteForce:
    def test_known_optimum(self):
        h = Hypergraph(
            edges={"a": [1, 2], "b": [2, 3], "c": [3, 4], "bridge": [2, 5], "d": [5, 6]}
        )
        best = brute_force_min_cut(h)
        assert best.cutsize == 1
        # several singleton splits achieve 1; all cut exactly one net
        assert len(best.crossing_edges) == 1

    def test_bisection_constraint(self):
        # Star: center + 5 leaves (6 vertices). Unconstrained best cuts 1
        # edge (split one leaf off); a 3/3 bisection strands 3 leaves on
        # the far side from the center, cutting 3.
        h = Hypergraph(edges={f"n{i}": [0, i] for i in range(1, 6)})
        free = brute_force_min_cut(h)
        bisect = brute_force_min_cut(h, require_bisection=True)
        assert free.cutsize == 1
        assert bisect.cutsize == 3
        assert bisect.is_bisection()

    def test_max_imbalance_constraint(self):
        h = Hypergraph(edges={f"n{i}": [0, i] for i in range(1, 6)})
        r2 = brute_force_min_cut(h, max_imbalance=2)
        assert r2.cardinality_imbalance <= 2

    def test_too_large_rejected(self):
        h = Hypergraph(vertices=range(25))
        with pytest.raises(ValueError):
            brute_force_min_cut(h)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            brute_force_min_cut(Hypergraph(vertices=[1]))

    def test_infeasible_constraints(self):
        h = Hypergraph(vertices=range(4))
        with pytest.raises(ValueError):
            brute_force_min_cut(h, max_imbalance=-1)
