"""Tests for the classic net models (clique / star / MST vs HPWL)."""

import pytest

from repro.core.hypergraph import Hypergraph
from repro.placement.wirelength import (
    NET_MODELS,
    net_clique_length,
    net_hpwl,
    net_mst_length,
    net_star_length,
    wirelength,
)


@pytest.fixture
def three_pin():
    """Net over an L-shape: (0,0), (4,0), (4,3)."""
    h = Hypergraph(edges={"n": ["a", "b", "c"]})
    positions = {"a": (0.0, 0.0), "b": (4.0, 0.0), "c": (4.0, 3.0)}
    return h, positions


class TestTwoPinAgreement:
    """All models coincide (up to normalization) on a 2-pin net."""

    def test_models_agree(self):
        h = Hypergraph(edges={"n": ["a", "b"]})
        positions = {"a": (0.0, 0.0), "b": (3.0, 4.0)}
        assert net_hpwl(h, "n", positions) == 7.0
        assert net_clique_length(h, "n", positions) == 7.0
        assert net_mst_length(h, "n", positions) == 7.0
        # star routes via the midpoint: same total for Manhattan distance
        assert net_star_length(h, "n", positions) == pytest.approx(7.0)


class TestThreePin:
    def test_hpwl(self, three_pin):
        h, positions = three_pin
        assert net_hpwl(h, "n", positions) == 4.0 + 3.0

    def test_mst(self, three_pin):
        h, positions = three_pin
        # MST: a-b (4) + b-c (3)
        assert net_mst_length(h, "n", positions) == 7.0

    def test_clique(self, three_pin):
        h, positions = three_pin
        # pairwise: 4 + 3 + 7 = 14, scaled by 2/3
        assert net_clique_length(h, "n", positions) == pytest.approx(14 * 2 / 3)

    def test_star(self, three_pin):
        h, positions = three_pin
        # centroid (8/3, 1): |dx|+|dy| sums
        cx, cy = 8 / 3, 1.0
        expected = sum(
            abs(x - cx) + abs(y - cy) for x, y in positions.values()
        )
        assert net_star_length(h, "n", positions) == pytest.approx(expected)


class TestOrderings:
    """Known inequalities: HPWL <= MST; star >= half of MST-ish bounds."""

    def test_hpwl_lower_bounds_mst(self):
        import random

        rng = random.Random(3)
        for trial in range(20):
            k = rng.randint(2, 8)
            h = Hypergraph(edges={"n": list(range(k))})
            positions = {i: (rng.uniform(0, 10), rng.uniform(0, 10)) for i in range(k)}
            assert net_hpwl(h, "n", positions) <= net_mst_length(h, "n", positions) + 1e-9

    def test_single_pin_all_zero(self):
        h = Hypergraph(edges={"n": ["a"]})
        positions = {"a": (5.0, 5.0)}
        for fn in (net_hpwl, net_clique_length, net_star_length, net_mst_length):
            if fn is net_hpwl:
                assert fn(h, "n", positions) == 0.0
            else:
                assert fn(h, "n", positions) == 0.0


class TestTotalWirelength:
    def test_weighted_totals(self):
        h = Hypergraph()
        h.add_edge(["a", "b"], name="x", weight=2.0)
        positions = {"a": (0.0, 0.0), "b": (1.0, 1.0)}
        assert wirelength(h, positions, model="hpwl") == 4.0
        assert wirelength(h, positions, model="mst") == 4.0

    def test_unknown_model(self):
        h = Hypergraph(edges={"n": ["a", "b"]})
        with pytest.raises(ValueError):
            wirelength(h, {"a": (0, 0), "b": (1, 1)}, model="steiner-exact")

    def test_registry_complete(self):
        assert set(NET_MODELS) == {"hpwl", "clique", "star", "mst"}

    def test_models_rank_consistently_on_placement(self):
        """On a real placement all models improve together vs random."""
        import random

        from repro.generators.netlists import clustered_netlist
        from repro.placement import SlotGrid, mincut_place

        h = clustered_netlist(25, 45, "std_cell", seed=5)
        for v in h.vertices:
            h.set_vertex_weight(v, 1.0)
        placed = mincut_place(h, SlotGrid(5, 5), seed=0)
        good = {v: (float(c), float(r)) for v, (r, c) in placed.positions.items()}
        rng = random.Random(0)
        slots = SlotGrid(5, 5).full_region().slots()
        rng.shuffle(slots)
        bad = {v: (float(c), float(r)) for v, (r, c) in zip(h.vertices, slots)}
        for model in NET_MODELS:
            assert wirelength(h, good, model) < wirelength(h, bad, model)
