"""Tests for the observability layer (``repro.obs``).

Covers the registry semantics (counters, gauges, span stats, snapshot,
merge), the module-level enable/disable switchboard and its zero-cost
disabled path, thread safety, the :class:`PhaseTimer` always-on local
timing, and the integration with Algorithm I — including the parallel
multi-start snapshot-merge path.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro import obs
from repro.baselines import fiduccia_mattheyses
from repro.core.algorithm1 import TIMING_PHASES, algorithm1
from repro.core.hypergraph import Hypergraph
from repro.generators import random_hypergraph
from repro.obs import ObsRegistry, PhaseTimer, SpanStats


@pytest.fixture(autouse=True)
def _obs_off():
    """Every test starts and ends with recording off and a clean registry."""
    obs.disable()
    obs.registry().clear()
    yield
    obs.disable()
    obs.registry().clear()


class TestRegistry:
    def test_counters_accumulate(self):
        reg = ObsRegistry()
        reg.inc("a")
        reg.inc("a", 4)
        reg.inc("b", 2.5)
        assert reg.counter("a") == 5
        assert reg.counter("b") == 2.5
        assert reg.counter("missing") == 0
        assert reg.counter("missing", default=-1) == -1

    def test_gauges_last_write_wins(self):
        reg = ObsRegistry()
        assert reg.gauge_value("g") is None
        reg.set_gauge("g", 1.0)
        reg.set_gauge("g", 7.0)
        assert reg.gauge_value("g") == 7.0

    def test_span_stats(self):
        reg = ObsRegistry()
        assert reg.span_stats("s") is None
        for dt in (0.2, 0.1, 0.4):
            reg.record_span("s", dt)
        stats = reg.span_stats("s")
        assert stats == SpanStats(count=3, total=pytest.approx(0.7), min=0.1, max=0.4)
        assert stats.mean == pytest.approx(0.7 / 3)

    def test_span_stats_mean_of_empty(self):
        assert SpanStats(count=0, total=0.0, min=0.0, max=0.0).mean == 0.0

    def test_names_sorted_by_kind(self):
        reg = ObsRegistry()
        reg.inc("z")
        reg.inc("a")
        reg.set_gauge("g", 1)
        reg.record_span("s", 0.1)
        assert reg.names() == {"counters": ["a", "z"], "gauges": ["g"], "spans": ["s"]}

    def test_snapshot_is_plain_json_data(self):
        reg = ObsRegistry()
        reg.inc("c", 3)
        reg.set_gauge("g", 2.0)
        reg.record_span("s", 0.25)
        snap = reg.snapshot()
        assert snap == json.loads(json.dumps(snap))
        assert snap["counters"] == {"c": 3}
        assert snap["gauges"] == {"g": 2.0}
        assert snap["spans"] == {"s": {"count": 1, "total": 0.25, "min": 0.25, "max": 0.25}}

    def test_snapshot_is_a_copy(self):
        reg = ObsRegistry()
        reg.inc("c")
        snap = reg.snapshot()
        reg.inc("c")
        assert snap["counters"]["c"] == 1

    def test_merge_adds_counters_and_extremizes_spans(self):
        a = ObsRegistry()
        b = ObsRegistry()
        a.inc("c", 2)
        b.inc("c", 3)
        b.inc("only_b")
        a.record_span("s", 0.5)
        b.record_span("s", 0.1)
        b.record_span("s", 0.9)
        a.set_gauge("g", 1.0)
        b.set_gauge("g", 2.0)

        a.merge(b.snapshot())
        assert a.counter("c") == 5
        assert a.counter("only_b") == 1
        assert a.span_stats("s") == SpanStats(
            count=3, total=pytest.approx(1.5), min=0.1, max=0.9
        )
        assert a.gauge_value("g") == 2.0  # last write wins

    def test_merge_into_empty_registry(self):
        a = ObsRegistry()
        b = ObsRegistry()
        b.record_span("s", 0.3)
        a.merge(b.snapshot())
        assert a.span_stats("s") == SpanStats(count=1, total=0.3, min=0.3, max=0.3)

    def test_clear(self):
        reg = ObsRegistry()
        reg.inc("c")
        reg.set_gauge("g", 1)
        reg.record_span("s", 0.1)
        reg.clear()
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "spans": {}}

    def test_to_json_round_trips(self):
        reg = ObsRegistry()
        reg.inc("c", 2)
        assert json.loads(reg.to_json())["counters"] == {"c": 2}

    def test_thread_safety_exact_totals(self):
        reg = ObsRegistry()
        threads = [
            threading.Thread(
                target=lambda: [reg.inc("hits") or reg.record_span("s", 0.001) for _ in range(2000)]
            )
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("hits") == 16000
        assert reg.span_stats("s").count == 16000


class TestSwitchboard:
    def test_disabled_records_nothing(self):
        with obs.span("x"):
            pass
        obs.count("x")
        obs.gauge("x", 1.0)
        assert obs.registry().snapshot() == {"counters": {}, "gauges": {}, "spans": {}}

    def test_disabled_span_is_shared_singleton(self):
        # The disabled fast path must not allocate per call.
        assert obs.span("a") is obs.span("b")

    def test_enable_disable(self):
        assert not obs.is_enabled()
        obs.enable()
        assert obs.is_enabled()
        obs.count("c")
        obs.disable()
        obs.count("c")  # ignored
        assert obs.registry().counter("c") == 1

    def test_enable_clear(self):
        obs.enable()
        obs.count("c")
        obs.enable(clear=True)
        assert obs.registry().counter("c") == 0

    def test_enabled_context_restores_prior_state(self):
        assert not obs.is_enabled()
        with obs.enabled() as reg:
            assert obs.is_enabled()
            obs.count("c")
            assert reg is obs.registry()
        assert not obs.is_enabled()
        assert obs.registry().counter("c") == 1  # data survives

    def test_enabled_context_restores_even_on_error(self):
        with pytest.raises(RuntimeError):
            with obs.enabled():
                raise RuntimeError("boom")
        assert not obs.is_enabled()

    def test_spans_record_when_enabled(self):
        with obs.enabled(clear=True):
            with obs.span("timed"):
                pass
        stats = obs.registry().span_stats("timed")
        assert stats is not None and stats.count == 1 and stats.total >= 0.0

    def test_scoped_isolates_and_restores(self):
        obs.enable(clear=True)
        obs.count("outer")
        with obs.scoped() as fresh:
            assert obs.registry() is fresh
            obs.count("inner")
            assert fresh.counter("outer") == 0
        assert obs.registry().counter("inner") == 0
        assert obs.registry().counter("outer") == 1
        assert obs.is_enabled()

    def test_scoped_activates_even_when_globally_disabled(self):
        assert not obs.is_enabled()
        with obs.scoped() as fresh:
            obs.count("c")
            assert fresh.counter("c") == 1
        assert not obs.is_enabled()

    def test_scoped_without_activation(self):
        with obs.scoped(activate=False) as fresh:
            obs.count("c")
        assert fresh.counter("c") == 0


class TestPhaseTimer:
    def test_local_timings_accumulate_when_disabled(self):
        timer = PhaseTimer("p", phases=("a", "b"))
        assert timer.timings == {"a": 0.0, "b": 0.0}
        with timer.phase("a"):
            pass
        with timer.phase("a"):
            pass
        with timer.phase("c"):
            pass
        assert timer.timings["a"] >= 0.0
        assert "c" in timer.timings
        # Nothing leaked into the global registry.
        assert obs.registry().snapshot()["spans"] == {}

    def test_publishes_spans_when_enabled(self):
        timer = PhaseTimer("pipeline")
        with obs.enabled(clear=True):
            with timer.phase("cut"):
                pass
            with timer.phase("cut"):
                pass
        stats = obs.registry().span_stats("pipeline.cut")
        assert stats.count == 2
        assert stats.total == pytest.approx(timer.timings["cut"], abs=1e-6)


class TestAlgorithm1Integration:
    @pytest.fixture(scope="class")
    def instance(self):
        return random_hypergraph(60, 90, seed=3, connect=True)

    def test_counters_and_spans_recorded(self, instance):
        with obs.enabled(clear=True) as reg:
            result = algorithm1(instance, num_starts=4, seed=0)
        assert reg.counter("algorithm1.runs") == 1
        assert reg.counter("algorithm1.starts") == 4
        assert reg.counter("dual_cut.cuts") >= 4
        assert reg.counter("complete_cut.runs") >= 1
        assert reg.counter("graph.bfs.calls") >= 4
        for phase in TIMING_PHASES:
            stats = reg.span_stats(f"algorithm1.{phase}")
            assert stats is not None, f"missing span algorithm1.{phase}"
        # Span totals agree with the always-on result timings.
        assert reg.span_stats("algorithm1.cut").total == pytest.approx(
            result.timings["cut"], abs=1e-6
        )

    def test_disabled_run_still_reports_timings(self, instance):
        result = algorithm1(instance, num_starts=2, seed=1)
        assert set(TIMING_PHASES) <= set(result.timings)
        assert obs.registry().snapshot()["counters"] == {}

    def test_parallel_workers_merge_into_parent(self, instance):
        with obs.enabled(clear=True) as reg:
            algorithm1(instance, num_starts=6, seed=5, parallel=2)
        # Worker-side work (per-start cut/completion) must be merged back.
        assert reg.counter("algorithm1.starts") == 6
        assert reg.counter("dual_cut.cuts") >= 6
        assert reg.gauge_value("algorithm1.parallel_workers") == 2
        assert reg.span_stats("algorithm1.cut").count >= 6

    def test_parallel_counters_match_sequential_worker_counts(self, instance):
        """Work counters are worker-count-invariant (same starts, same work)."""
        invariant = ("algorithm1.starts", "dual_cut.cuts", "complete_cut.runs")
        values = {}
        for workers in (1, 2):
            with obs.enabled(clear=True) as reg:
                algorithm1(instance, num_starts=6, seed=5, parallel=workers)
            values[workers] = [reg.counter(name) for name in invariant]
        assert values[1] == values[2]


class TestBaselineIntegration:
    def test_fm_records_span_and_counters(self):
        h = Hypergraph(edges=[[1, 2], [2, 3], [3, 4], [4, 1], [1, 3]])
        with obs.enabled(clear=True) as reg:
            fiduccia_mattheyses(h, seed=0)
        assert reg.counter("baseline.fm.runs") == 1
        assert reg.counter("baseline.fm.passes") >= 1
        assert reg.span_stats("baseline.fm").count == 1
