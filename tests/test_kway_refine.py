"""Tests for pairwise FM refinement of k-way partitions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hypergraph import Hypergraph
from repro.core.kway import KWayPartition, recursive_bisection
from repro.core.kway_refine import refine_kway
from repro.generators.netlists import clustered_netlist
from tests.conftest import hypergraphs


@pytest.fixture
def netlist():
    return clustered_netlist(60, 110, "std_cell", seed=51)


class TestRefineKway:
    def test_never_worse(self, netlist):
        start = recursive_bisection(netlist, 4, num_starts=2, seed=0)
        refined = refine_kway(start, seed=0)
        assert refined.connectivity <= start.connectivity
        assert refined.k == start.k

    def test_preserves_vertex_cover(self, netlist):
        start = recursive_bisection(netlist, 3, num_starts=2, seed=0)
        refined = refine_kway(start, seed=0)
        assert set().union(*refined.blocks) == set(netlist.vertices)

    def test_often_improves_weak_start(self):
        """A deliberately bad start (sorted-order chop) leaves big slack."""
        improvements = 0
        for seed in range(4):
            h = clustered_netlist(48, 90, "std_cell", seed=seed + 60)
            vertices = sorted(h.vertices)
            chop = [frozenset(vertices[i::4]) for i in range(4)]  # interleaved!
            start = KWayPartition(hypergraph=h, blocks=tuple(chop))
            refined = refine_kway(start, sweeps=3, seed=seed)
            if refined.connectivity < start.connectivity:
                improvements += 1
        assert improvements >= 3

    def test_zero_sweeps_noop(self, netlist):
        start = recursive_bisection(netlist, 4, num_starts=2, seed=0)
        refined = refine_kway(start, sweeps=0, seed=0)
        assert refined is start

    def test_negative_sweeps_rejected(self, netlist):
        start = recursive_bisection(netlist, 2, num_starts=1, seed=0)
        with pytest.raises(ValueError):
            refine_kway(start, sweeps=-1)

    def test_two_blocks_equals_fm_refine_quality(self, netlist):
        start = recursive_bisection(netlist, 2, num_starts=2, seed=0)
        refined = refine_kway(start, seed=0)
        assert refined.cutsize <= start.cutsize

    @settings(max_examples=15, deadline=None)
    @given(hypergraphs(min_vertices=8, max_vertices=14), st.integers(2, 4))
    def test_property_monotone_and_valid(self, h, k):
        if h.num_vertices < k:
            return
        start = recursive_bisection(h, k, num_starts=1, seed=0)
        refined = refine_kway(start, seed=0)
        assert refined.connectivity <= start.connectivity
        assert set().union(*refined.blocks) == set(h.vertices)
        assert all(refined.blocks)


class TestRefineDeadline:
    def test_zero_deadline_stops_early_but_stays_monotone(self, netlist):
        start = recursive_bisection(netlist, 4, num_starts=2, seed=0)
        refined = refine_kway(start, sweeps=3, seed=0, deadline=0.0)
        assert refined.connectivity <= start.connectivity
        assert set().union(*refined.blocks) == set(netlist.vertices)
        if refined.degraded:
            assert "deadline" in refined.degrade_reason

    def test_generous_deadline_never_degrades(self, netlist):
        start = recursive_bisection(netlist, 4, num_starts=2, seed=0)
        refined = refine_kway(start, sweeps=2, seed=0, deadline=600.0)
        assert refined.degraded is False
        unconstrained = refine_kway(start, sweeps=2, seed=0)
        assert refined.blocks == unconstrained.blocks

    def test_degraded_input_stays_flagged(self, netlist):
        start = recursive_bisection(netlist, 4, num_starts=1, seed=0, deadline=0.0)
        assert start.degraded
        refined = refine_kway(start, sweeps=1, seed=0, deadline=600.0)
        assert refined.degraded is True
        assert start.degrade_reason.split(";")[0] in refined.degrade_reason
