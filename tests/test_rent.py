"""Tests for Rent-exponent estimation."""

import pytest

from repro.analysis.rent import (
    RentEstimate,
    estimate_rent_exponent,
    external_terminals,
    rent_comparison_experiment,
)
from repro.core.hypergraph import Hypergraph
from repro.generators.netlists import clustered_netlist
from repro.generators.random_hypergraph import random_hypergraph


class TestExternalTerminals:
    def test_counts_crossing_nets(self):
        h = Hypergraph(edges={"in": [1, 2], "cross": [2, 3], "out": [3, 4]})
        assert external_terminals(h, {1, 2}) == 1
        assert external_terminals(h, {2, 3}) == 2
        assert external_terminals(h, set(h.vertices)) == 0
        assert external_terminals(h, set()) == 0

    def test_fully_internal_block(self):
        h = Hypergraph(edges={"a": [1, 2], "b": [3, 4]})
        assert external_terminals(h, {1, 2}) == 0


class TestEstimate:
    def test_returns_estimate(self):
        h = clustered_netlist(80, 140, "std_cell", seed=3)
        est = estimate_rent_exponent(h, seed=0)
        assert isinstance(est, RentEstimate)
        assert est.num_samples >= 4
        assert est.coefficient > 0

    def test_deterministic(self):
        h = clustered_netlist(60, 100, "std_cell", seed=4)
        a = estimate_rent_exponent(h, seed=7)
        b = estimate_rent_exponent(h, seed=7)
        assert a.exponent == b.exponent

    def test_hierarchy_lowers_exponent(self):
        clustered = clustered_netlist(150, 250, "std_cell", seed=5)
        rand = random_hypergraph(150, 250, seed=5, connect=True)
        p_clustered = estimate_rent_exponent(clustered, seed=0).exponent
        p_random = estimate_rent_exponent(rand, seed=0).exponent
        assert p_clustered < p_random

    def test_too_small_rejected(self):
        h = Hypergraph(edges={"n": [1, 2]})
        with pytest.raises(ValueError):
            estimate_rent_exponent(h)

    def test_samples_are_block_terminal_pairs(self):
        h = clustered_netlist(60, 100, "std_cell", seed=6)
        est = estimate_rent_exponent(h, seed=0)
        for block_size, terminals in est.samples:
            assert block_size >= 2
            assert terminals >= 0
            assert terminals <= h.num_edges


class TestComparisonExperiment:
    def test_rows(self):
        rows = rent_comparison_experiment(num_modules=60, num_signals=100, trials=1, seed=0)
        assert {row["kind"] for row in rows} == {"netlist", "random"}
        for row in rows:
            assert row["min"] <= row["mean_rent_exponent"] <= row["max"]
