"""Tests for k-way partitioning by recursive bisection."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hypergraph import Hypergraph
from repro.core.kway import KWayError, KWayPartition, recursive_bisection
from repro.generators.netlists import clustered_netlist
from tests.conftest import hypergraphs


@pytest.fixture
def netlist():
    return clustered_netlist(48, 90, "std_cell", seed=21)


class TestKWayPartition:
    def make(self, blocks):
        vertices = [v for block in blocks for v in block]
        h = Hypergraph(vertices=vertices)
        h.add_edge(vertices[:3], name="span3")
        h.add_edge(vertices[:2], name="pair")
        return KWayPartition(hypergraph=h, blocks=tuple(frozenset(b) for b in blocks))

    def test_objectives(self):
        kp = self.make([["a"], ["b"], ["c", "d"]])
        # span3 = {a,b,c} touches 3 blocks; pair = {a,b} touches 2.
        assert kp.blocks_touched("span3") == 3
        assert kp.cut_nets == frozenset({"span3", "pair"})
        assert kp.cutsize == 2
        assert kp.sum_external_degrees == 5
        assert kp.connectivity == 3  # (3-1) + (2-1)

    def test_block_of(self):
        kp = self.make([["a"], ["b"], ["c", "d"]])
        assert kp.block_of("a") == 0
        assert kp.block_of("d") == 2
        with pytest.raises(KWayError):
            kp.block_of("zz")

    def test_invalid_blocks(self):
        h = Hypergraph(vertices=["a", "b"])
        with pytest.raises(KWayError):
            KWayPartition(h, (frozenset({"a"}), frozenset()))
        with pytest.raises(KWayError):
            KWayPartition(h, (frozenset({"a"}), frozenset({"a", "b"})))
        with pytest.raises(KWayError):
            KWayPartition(h, (frozenset({"a"}),))

    def test_weights_and_imbalance(self):
        h = Hypergraph(vertices=["a", "b", "c"])
        h.set_vertex_weight("a", 4.0)
        kp = KWayPartition(h, (frozenset({"a"}), frozenset({"b", "c"})))
        assert kp.block_weights() == [4.0, 2.0]
        assert kp.weight_imbalance_fraction == pytest.approx((4 - 3) / 3)


class TestRecursiveBisection:
    @pytest.mark.parametrize("k", [1, 2, 3, 4, 6, 8])
    def test_valid_partition(self, netlist, k):
        kp = recursive_bisection(netlist, k, seed=0)
        assert kp.k == k
        assert set().union(*kp.blocks) == set(netlist.vertices)

    def test_k1_is_everything(self, netlist):
        kp = recursive_bisection(netlist, 1, seed=0)
        assert kp.cutsize == 0
        assert kp.connectivity == 0

    def test_balance(self, netlist):
        kp = recursive_bisection(netlist, 4, seed=0)
        sizes = [len(b) for b in kp.blocks]
        assert max(sizes) - min(sizes) <= max(4, 0.5 * (48 / 4))

    def test_non_power_of_two(self, netlist):
        kp = recursive_bisection(netlist, 3, seed=0)
        sizes = sorted(len(b) for b in kp.blocks)
        assert sum(sizes) == 48
        assert sizes[0] >= 48 // 3 - 8

    def test_k_equals_n(self):
        h = Hypergraph(edges={"n": [1, 2], "m": [2, 3]})
        kp = recursive_bisection(h, 3, seed=0)
        assert all(len(b) == 1 for b in kp.blocks)
        assert kp.cutsize == 2

    def test_connectivity_at_least_cutsize(self, netlist):
        kp = recursive_bisection(netlist, 4, seed=0)
        assert kp.connectivity >= kp.cutsize
        assert kp.sum_external_degrees >= 2 * kp.cutsize

    def test_more_blocks_cut_no_fewer_nets(self, netlist):
        cuts = [
            recursive_bisection(netlist, k, seed=0).cutsize for k in (2, 4, 8)
        ]
        assert cuts[0] <= cuts[1] + 4
        assert cuts[1] <= cuts[2] + 4

    def test_custom_bisector(self, netlist):
        def halver(sub, rng):
            ordered = sorted(sub.vertices, key=repr)
            half = len(ordered) // 2
            return set(ordered[:half]), set(ordered[half:])

        kp = recursive_bisection(netlist, 4, bisector=halver, seed=0)
        assert kp.k == 4

    def test_errors(self, netlist):
        with pytest.raises(KWayError):
            recursive_bisection(netlist, 0)
        with pytest.raises(KWayError):
            recursive_bisection(Hypergraph(vertices=[1, 2]), 3)

    @settings(max_examples=20, deadline=None)
    @given(hypergraphs(min_vertices=6, max_vertices=12), st.integers(2, 4))
    def test_property_valid(self, h, k):
        kp = recursive_bisection(h, k, num_starts=2, seed=0)
        assert kp.k == k
        assert set().union(*kp.blocks) == set(h.vertices)
        assert sum(len(b) for b in kp.blocks) == h.num_vertices


class TestKWayDeadline:
    def test_zero_deadline_degrades_with_valid_blocks(self, netlist):
        kp = recursive_bisection(netlist, 4, num_starts=2, seed=0, deadline=0.0)
        assert kp.k == 4
        assert kp.degraded is True
        assert "deadline" in kp.degrade_reason
        assert set().union(*kp.blocks) == set(netlist.vertices)

    def test_generous_deadline_matches_unconstrained(self, netlist):
        bounded = recursive_bisection(netlist, 4, num_starts=2, seed=0, deadline=600.0)
        free = recursive_bisection(netlist, 4, num_starts=2, seed=0)
        assert bounded.degraded is False
        assert bounded.degrade_reason is None
        assert bounded.blocks == free.blocks

    def test_degraded_flags_excluded_from_equality(self, netlist):
        a = recursive_bisection(netlist, 2, num_starts=1, seed=0)
        b = KWayPartition(
            hypergraph=a.hypergraph,
            blocks=a.blocks,
            degraded=True,
            degrade_reason="synthetic",
        )
        assert a == b

    def test_plain_seconds_accepted_as_deadline(self, netlist):
        kp = recursive_bisection(netlist, 3, num_starts=1, seed=0, deadline=600)
        assert kp.degraded is False
