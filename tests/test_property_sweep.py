"""Property tests: every engine returns a well-formed, honestly-scored cut.

Three invariants, asserted for Algorithm I and the FM/KL/SA baselines
over hypothesis-generated hypergraphs and a seeded sweep:

* **partition** — every module lands on exactly one side, no module is
  dropped, both sides are non-empty;
* **honest cutsize** — the reported cutsize equals the cut recomputed
  from scratch off the hypergraph and the returned sides;
* **balance** — engines given a balance tolerance respect it (FM/SA
  never move out of tolerance from a feasible start; Algorithm I's
  multi-start selection returns a feasible cut whenever any start found
  one).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings

from repro.baselines import (
    fiduccia_mattheyses,
    kernighan_lin,
    simulated_annealing,
)
from repro.baselines.simulated_annealing import AnnealingSchedule
from repro.core.algorithm1 import algorithm1
from repro.core.hypergraph import Hypergraph
from repro.core.partition import Bipartition
from repro.generators import random_hypergraph
from tests.conftest import connected_hypergraphs, hypergraphs

_SWEEP_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_FAST_SA = AnnealingSchedule(
    alpha=0.8, max_total_moves=2_000, min_temperature=0.05, frozen_after=2
)


def recomputed_cutsize(hypergraph: Hypergraph, left, right) -> int:
    """Cutsize from first principles: nets with pins on both sides."""
    left = set(left)
    cut = 0
    for name in hypergraph.edge_names:
        members = hypergraph.edge_members(name)
        inside = sum(1 for v in members if v in left)
        if 0 < inside < len(members):
            cut += 1
    return cut


def assert_well_formed(hypergraph: Hypergraph, bipartition: Bipartition) -> None:
    left, right = bipartition.left, bipartition.right
    assert left and right, "both sides must be non-empty"
    assert not (left & right), "no module may sit on both sides"
    assert left | right == frozenset(hypergraph.vertices), "every module assigned"
    assert bipartition.cutsize == recomputed_cutsize(hypergraph, left, right)


class TestAlgorithm1Properties:
    @given(h=connected_hypergraphs())
    @_SWEEP_SETTINGS
    def test_partition_and_cutsize(self, h):
        result = algorithm1(h, num_starts=3, seed=0)
        assert_well_formed(h, result.bipartition)
        # The winner can only improve on the raw starts (component packing
        # or balance repair may beat them, never lose to them).
        assert result.bipartition.cutsize <= min(r.cutsize for r in result.starts)

    @given(h=hypergraphs(min_vertices=4, weighted=True))
    @_SWEEP_SETTINGS
    def test_weighted_instances_stay_well_formed(self, h):
        result = algorithm1(h, num_starts=2, seed=1, weighted_balance=True)
        assert_well_formed(h, result.bipartition)

    def test_seeded_sweep_partition_invariants(self):
        for seed in range(20):
            h = random_hypergraph(40, 70, seed=seed, connect=True)
            result = algorithm1(h, num_starts=4, seed=seed)
            assert_well_formed(h, result.bipartition)

    def test_balance_tolerance_honoured_when_any_start_feasible(self):
        """Multi-start selection returns a feasible cut whenever one exists."""
        tol = 0.2
        for seed in range(20):
            h = random_hypergraph(40, 70, seed=100 + seed, connect=True)
            total = sum(h.vertex_weight(v) for v in h.vertices)
            result = algorithm1(h, num_starts=5, seed=seed, balance_tolerance=tol)
            assert_well_formed(h, result.bipartition)
            if any(r.weight_imbalance / total <= tol for r in result.starts):
                assert result.bipartition.weight_imbalance_fraction <= tol + 1e-12


class TestBaselineProperties:
    @given(h=connected_hypergraphs())
    @_SWEEP_SETTINGS
    def test_fm(self, h):
        result = fiduccia_mattheyses(h, seed=0)
        assert_well_formed(h, result.bipartition)

    @given(h=connected_hypergraphs())
    @_SWEEP_SETTINGS
    def test_kl(self, h):
        result = kernighan_lin(h, seed=0)
        assert_well_formed(h, result.bipartition)

    @given(h=connected_hypergraphs(max_vertices=10))
    @_SWEEP_SETTINGS
    def test_sa(self, h):
        result = simulated_annealing(h, schedule=_FAST_SA, seed=0)
        assert_well_formed(h, result.bipartition)

    def test_fm_respects_balance_tolerance_from_feasible_start(self):
        tol = 0.1
        for seed in range(20):
            h = random_hypergraph(30, 50, seed=200 + seed, connect=True)
            rng = random.Random(seed)
            vertices = sorted(h.vertices, key=repr)
            rng.shuffle(vertices)
            half = len(vertices) // 2
            initial = Bipartition(h, vertices[:half], vertices[half:])
            assert initial.weight_imbalance_fraction <= tol
            result = fiduccia_mattheyses(
                h, initial=initial, balance_tolerance=tol, seed=seed
            )
            assert_well_formed(h, result.bipartition)
            assert result.bipartition.weight_imbalance_fraction <= tol + 1e-12

    def test_sa_respects_balance_tolerance(self):
        tol = 0.1
        for seed in range(10):
            h = random_hypergraph(24, 40, seed=300 + seed, connect=True)
            result = simulated_annealing(
                h, schedule=_FAST_SA, balance_tolerance=tol, seed=seed
            )
            assert_well_formed(h, result.bipartition)
            assert result.bipartition.weight_imbalance_fraction <= tol + 1e-12

    def test_reported_history_is_monotone_for_fm(self):
        for seed in range(5):
            h = random_hypergraph(30, 50, seed=400 + seed, connect=True)
            result = fiduccia_mattheyses(h, seed=seed)
            history = list(result.history)
            # Each FM pass ends at its best prefix, so per-pass cutsizes
            # never increase.
            assert all(a >= b for a, b in zip(history, history[1:]))
